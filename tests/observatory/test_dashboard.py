"""Dashboard: panel content and render-on/off non-perturbation."""

from repro.bench import CC, pipellm
from repro.observatory.dashboard import run_flexgen_dashboard


def run(render, **kw):
    kw.setdefault("system", pipellm(8, 2))
    kw.setdefault("n_requests", 6)
    kw.setdefault("interval_s", 0.2)
    kw.setdefault("seed", 5)
    return run_flexgen_dashboard(render=render, **kw)


class TestNonPerturbation:
    def test_summary_identical_with_and_without_rendering(self):
        """Observing the simulation must not change it (same seed)."""
        rendered = run(render=True)
        blind = run(render=False)
        assert rendered.summary == blind.summary
        assert rendered.frames and blind.frames == []

    def test_rendering_twice_is_stable(self):
        assert run(render=True).summary == run(render=True).summary


class TestPanels:
    def test_frame_has_every_required_panel(self):
        frames = run(render=True).frames
        last = frames[-1]
        assert "utilization" in last
        assert "crypto-engine" in last and "pcie" in last and "gpu" in last
        assert "wire latency" in last
        assert "p50" in last and "p95" in last and "p99" in last
        assert "speculation" in last and "hit-rate" in last
        assert "pipeline mode SPECULATIVE" in last
        assert "iv audit" in last and "aligned" in last
        assert "critical path:" in last

    def test_cc_baseline_reaches_encryption_bound(self):
        result = run(render=True, system=CC)
        assert result.summary["verdict"] == "encryption-bound"
        assert "critical path: encryption-bound" in result.frames[-1]

    def test_summary_fields(self):
        summary = run(render=False).summary
        for key in (
            "system", "throughput_tok_s", "verdict", "requests_profiled",
            "speculation_hit_rate", "final_sim_time_s",
        ):
            assert key in summary
        assert summary["system"] == "PipeLLM"
        assert summary["requests_profiled"] > 0
        assert 0.0 < summary["speculation_hit_rate"] <= 1.0

    def test_frame_carries_the_telemetry_panel(self):
        last = run(render=True).frames[-1]
        assert "telemetry" in last
        assert "ring-dropped" in last and "tap-dropped" in last
        assert "lanes:" in last
        # Lane counts come from the typed event stream; a PipeLLM run
        # always speculates, so that lane must be populated.
        lanes_line = next(l for l in last.splitlines() if "lanes:" in l)
        assert "speculation=" in lanes_line

    def test_sink_receives_frames(self):
        received = []
        result = run(render=True, sink=received.append)
        # The sink gets every loop frame plus one final frame.
        assert len(received) == len(result.frames) + 1


class TestServeDashboard:
    def run_serve(self, render, **kw):
        from repro.observatory.dashboard import run_serve_dashboard

        kw.setdefault("rate", 10.0)
        kw.setdefault("duration", 2.0)
        kw.setdefault("interval_s", 0.25)
        kw.setdefault("seed", 5)
        return run_serve_dashboard(render=render, **kw)

    def test_rendering_does_not_perturb_the_run(self):
        rendered = self.run_serve(render=True)
        blind = self.run_serve(render=False)
        assert rendered.summary == blind.summary
        assert rendered.frames and blind.frames == []

    def test_frame_carries_the_serving_panel(self):
        last = self.run_serve(render=True).frames[-1]
        assert "serving (TTFT / TPOT)" in last
        assert "ttft" in last and "tpot" in last
        assert "completed" in last and "shed" in last

    def test_summary_closes_the_ledger(self):
        summary = self.run_serve(render=False).summary
        assert summary["completed"] + summary["shed"] == summary["offered"]
        assert summary["final_sim_time_s"] > 0.0
        assert summary["rate_rps"] == 10.0
