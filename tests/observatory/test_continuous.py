"""Continuous bench harness: artifacts, determinism, regression gate."""

import copy
import json
from pathlib import Path

import pytest

from repro.bench.continuous import (
    BENCH_SCHEMA_VERSION,
    SUITES,
    artifact_index,
    compare_artifacts,
    find_latest_artifact,
    load_artifact,
    next_artifact_path,
    render_comparison,
    run_suite,
)


@pytest.fixture(scope="module")
def smoke_artifact():
    return run_suite("smoke", seed=3)


class TestArtifactSchema:
    def test_required_fields(self, smoke_artifact):
        a = smoke_artifact
        assert a["schema_version"] == BENCH_SCHEMA_VERSION
        assert a["suite"] == "smoke" and a["seed"] == 3
        assert set(a["verdicts"]) == {"offload-cc", "offload-pipellm"}
        for metric in a["key_metrics"].values():
            assert {"value", "higher_is_better"} <= set(metric)
            assert set(metric) <= {"value", "higher_is_better", "level"}
            assert isinstance(metric["value"], float)
            assert isinstance(metric["higher_is_better"], bool)
        assert "campaigns" in a and "wall_clock_s" in a

    def test_wall_clock_key_metric_requires_a_clock(self, smoke_artifact):
        # The fixture runs without a clock: no wall-clock key metric,
        # and every remaining entry is a gated simulated quantity.
        assert "wall_clock_s" not in smoke_artifact["key_metrics"]
        ticks = iter(range(100))
        timed = run_suite("smoke", seed=3, clock=lambda: float(next(ticks)))
        wall = timed["key_metrics"]["wall_clock_s"]
        assert wall["level"] == "warn"
        assert wall["higher_is_better"] is False
        assert wall["value"] == timed["wall_clock_s"] > 0.0

    def test_verdicts_match_paper_regimes(self, smoke_artifact):
        assert smoke_artifact["verdicts"]["offload-cc"] == "encryption-bound"
        assert smoke_artifact["verdicts"]["offload-pipellm"] != "encryption-bound"

    def test_serve_campaign_present_with_closed_ledger(self, smoke_artifact):
        serve = smoke_artifact["campaigns"]["serve"]
        for system in ("cc", "pipellm"):
            run = serve[system]
            assert run["completed"] + run["shed"] == run["offered"]
            assert 0.0 <= run["attainment"] <= 1.0
        assert {
            "serve_pipellm_goodput_rps",
            "serve_pipellm_attainment",
            "serve_pipellm_p99_ttft_s",
            "serve_cc_goodput_rps",
        } <= set(smoke_artifact["key_metrics"])

    def test_artifact_is_json_serialisable(self, smoke_artifact, tmp_path):
        path = tmp_path / "BENCH_0.json"
        path.write_text(json.dumps(smoke_artifact, indent=2, sort_keys=True))
        assert load_artifact(path) == smoke_artifact

    def test_wrong_schema_version_rejected(self, smoke_artifact, tmp_path):
        bad = dict(smoke_artifact, schema_version=BENCH_SCHEMA_VERSION + 1)
        path = tmp_path / "BENCH_9.json"
        path.write_text(json.dumps(bad))
        with pytest.raises(ValueError):
            load_artifact(path)


class TestDeterminism:
    def test_same_seed_zero_regression(self, smoke_artifact):
        again = run_suite("smoke", seed=3)
        diff = compare_artifacts(smoke_artifact, again)
        assert diff["regressions"] == []
        assert diff["improvements"] == []
        assert len(diff["unchanged"]) == len(smoke_artifact["key_metrics"])
        for entry in diff["unchanged"]:
            assert entry["change"] == 0.0


class TestComparator:
    def perturb(self, artifact, metric, factor):
        mutated = copy.deepcopy(artifact)
        mutated["key_metrics"][metric]["value"] *= factor
        return mutated

    def test_higher_is_better_drop_is_regression(self, smoke_artifact):
        worse = self.perturb(
            smoke_artifact, "offload_pipellm_throughput_tok_s", 0.9
        )
        diff = compare_artifacts(smoke_artifact, worse)
        assert [r["metric"] for r in diff["regressions"]] == [
            "offload_pipellm_throughput_tok_s"
        ]

    def test_lower_is_better_rise_is_regression(self, smoke_artifact):
        worse = self.perturb(smoke_artifact, "pipellm_p99_wire_s", 1.1)
        diff = compare_artifacts(smoke_artifact, worse)
        assert [r["metric"] for r in diff["regressions"]] == ["pipellm_p99_wire_s"]

    def test_within_tolerance_is_not_regression(self, smoke_artifact):
        slightly = self.perturb(
            smoke_artifact, "offload_pipellm_throughput_tok_s", 0.97
        )
        diff = compare_artifacts(smoke_artifact, slightly, tolerance=0.05)
        assert diff["regressions"] == []

    def test_improvement_is_reported_not_gated(self, smoke_artifact):
        better = self.perturb(
            smoke_artifact, "offload_pipellm_throughput_tok_s", 1.2
        )
        diff = compare_artifacts(smoke_artifact, better)
        assert diff["regressions"] == []
        assert [r["metric"] for r in diff["improvements"]] == [
            "offload_pipellm_throughput_tok_s"
        ]

    def test_verdict_flip_is_a_regression(self, smoke_artifact):
        flipped = copy.deepcopy(smoke_artifact)
        flipped["verdicts"]["offload-pipellm"] = "encryption-bound"
        diff = compare_artifacts(smoke_artifact, flipped)
        assert any(
            r["metric"] == "verdict:offload-pipellm" for r in diff["regressions"]
        )

    def test_render_comparison_mentions_every_regression(self, smoke_artifact):
        worse = self.perturb(smoke_artifact, "pipellm_hit_rate", 0.5)
        text = render_comparison(compare_artifacts(smoke_artifact, worse))
        assert "pipellm_hit_rate" in text
        assert "1 regressions" in text

    def test_wall_clock_never_gated(self, smoke_artifact):
        mutated = copy.deepcopy(smoke_artifact)
        mutated["wall_clock_s"] = smoke_artifact.get("wall_clock_s", 0.0) + 1e6
        diff = compare_artifacts(smoke_artifact, mutated)
        assert diff["regressions"] == []

    def test_warn_level_metric_warns_instead_of_regressing(self, smoke_artifact):
        base = copy.deepcopy(smoke_artifact)
        base["key_metrics"]["wall_clock_s"] = {
            "value": 10.0, "higher_is_better": False, "level": "warn",
        }
        slow = copy.deepcopy(base)
        slow["key_metrics"]["wall_clock_s"]["value"] = 100.0
        diff = compare_artifacts(base, slow)
        assert diff["regressions"] == []
        assert [w["metric"] for w in diff["warnings"]] == ["wall_clock_s"]
        # Beyond-tolerance movement in the *good* direction is also
        # only a warning — wall time is noise, not a gated win.
        fastr = copy.deepcopy(base)
        fastr["key_metrics"]["wall_clock_s"]["value"] = 1.0
        diff = compare_artifacts(base, fastr)
        assert diff["improvements"] == []
        assert [w["metric"] for w in diff["warnings"]] == ["wall_clock_s"]
        assert "warnings" in render_comparison(diff)
        assert "WARN" in render_comparison(diff)

    def test_warn_level_respected_from_either_side(self, smoke_artifact):
        # A baseline artifact written before wall-clock tracking has
        # no level tag; the candidate's tag alone must de-gate it.
        base = copy.deepcopy(smoke_artifact)
        base["key_metrics"]["wall_clock_s"] = {
            "value": 10.0, "higher_is_better": False,
        }
        cand = copy.deepcopy(base)
        cand["key_metrics"]["wall_clock_s"] = {
            "value": 100.0, "higher_is_better": False, "level": "warn",
        }
        diff = compare_artifacts(base, cand)
        assert diff["regressions"] == []
        assert [w["metric"] for w in diff["warnings"]] == ["wall_clock_s"]


class TestArtifactNumbering:
    def test_next_and_latest(self, tmp_path):
        assert find_latest_artifact(tmp_path) is None
        assert next_artifact_path(tmp_path).name == "BENCH_0.json"
        (tmp_path / "BENCH_0.json").write_text("{}")
        (tmp_path / "BENCH_2.json").write_text("{}")
        (tmp_path / "not-an-artifact.json").write_text("{}")
        assert next_artifact_path(tmp_path).name == "BENCH_3.json"
        assert find_latest_artifact(tmp_path).name == "BENCH_2.json"
        assert find_latest_artifact(tmp_path, below=2).name == "BENCH_0.json"
        assert artifact_index(Path("BENCH_17.json")) == 17

    def test_suites_registry(self):
        assert {"standard", "smoke"} <= set(SUITES)
        assert SUITES["smoke"].flexgen_requests < SUITES["standard"].flexgen_requests
