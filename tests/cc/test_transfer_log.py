"""TransferLog ring buffer: bounded history with exact whole-run stats."""

import pytest

from repro.cc import CcMode, CudaContext, Machine, TransferLog
from repro.hw import MB, MemoryChunk


class TestTransferLog:
    def test_bounded_at_cap(self):
        log = TransferLog(cap=4)
        for i in range(10):
            log.append(i)
        assert len(log) == 4
        assert list(log) == [6, 7, 8, 9]

    def test_stats_exact_at_boundary(self):
        log = TransferLog(cap=4)
        for i in range(4):
            log.append(i)
        assert (log.total, log.dropped) == (4, 0)
        log.append(4)  # first eviction
        assert (log.total, log.dropped) == (5, 1)
        for i in range(5, 10):
            log.append(i)
        assert (log.total, log.dropped) == (10, 6)

    def test_indexing_and_slicing(self):
        log = TransferLog(cap=3)
        for i in range(5):
            log.append(i)
        assert log[0] == 2
        assert log[-1] == 4
        assert log[1:] == [3, 4]

    def test_unbounded_mode(self):
        log = TransferLog(cap=None)
        for i in range(100):
            log.append(i)
        assert len(log) == 100
        assert log.dropped == 0

    def test_empty_is_falsy(self):
        log = TransferLog(cap=4)
        assert not log
        log.append(1)
        assert log

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            TransferLog(cap=0)


class TestRuntimeTraceCap:
    def test_runtime_trace_is_bounded(self):
        machine = Machine(CcMode.DISABLED)
        runtime = CudaContext(machine, trace_cap=3)
        region = machine.host_memory.allocate(MB, "data", b"\x05" * 8)
        for _ in range(5):
            runtime.memcpy_h2d(machine.host_memory.chunk_at(region.addr))
        machine.sim.run()
        assert len(runtime.trace) == 3
        assert runtime.trace.total == 5
        assert runtime.trace.dropped == 2
        # Retained records are the most recent ones.
        assert all(r.direction == "h2d" for r in runtime.trace)

    def test_default_cap_present(self):
        machine = Machine(CcMode.DISABLED)
        runtime = CudaContext(machine)
        assert runtime.trace.cap is not None
