"""A literal reconstruction of the paper's Figure 1.

"The messages labeled 'a' and 'b' represent two consecutive
ciphertexts transferred from the CPU to the GPU, while 'c' and 'd'
denote ciphertexts moved from the GPU back to the CPU. After the
transfers, the current IV of CPU and GPU is 3 and 7, respectively."

The figure implies the H2D counter started at 1 and the D2H counter at
5; both sides track both directions without any IV ever crossing the
wire.
"""

from repro.crypto import SecureSession


def test_figure1_workflow():
    session = SecureSession(key=bytes(range(16)), h2d_start_iv=1, d2h_start_iv=5)
    cpu, gpu = session.endpoints()

    # "a" and "b": CPU -> GPU.
    for label in (b"a", b"b"):
        message = cpu.encrypt_next(label)
        assert gpu.decrypt_next(message) == label

    # "c" and "d": GPU -> CPU.
    for label in (b"c", b"d"):
        message = gpu.encrypt_next(label)
        assert cpu.decrypt_next(message) == label

    # "After the transfers, the current IV of CPU and GPU is 3 and 7."
    assert cpu.tx_iv.current == 3       # CPU's next H2D encryption IV.
    assert gpu.tx_iv.current == 7       # GPU's next D2H encryption IV.
    # And the receive sides track the senders exactly.
    assert gpu.rx_iv.current == 3
    assert cpu.rx_iv.current == 7


def test_figure1_iv_never_on_the_wire():
    """The wire format carries ciphertext and tag only; the receiver
    derives the IV locally (the `sender_iv` field on the message is
    simulation introspection, never read by `decrypt_next`)."""
    session = SecureSession(key=bytes(16), h2d_start_iv=1)
    cpu, gpu = session.endpoints()
    message = cpu.encrypt_next(b"payload")
    # Forge the introspection field: delivery must be unaffected.
    from repro.crypto import EncryptedMessage

    forged = EncryptedMessage(message.ciphertext, message.tag, 999999, message.nbytes_logical)
    assert gpu.decrypt_next(forged) == b"payload"
