"""Tests for machine assembly and the baseline CUDA-like runtimes."""

import pytest

from repro.cc import CcMode, CudaContext, Machine, build_machine
from repro.hw import MB, MemoryChunk


def make(mode, **kwargs):
    machine = build_machine(mode, **kwargs)
    return machine, CudaContext(machine)


class TestMachine:
    def test_disabled_has_no_endpoints(self):
        machine = build_machine(CcMode.DISABLED)
        assert machine.cpu_endpoint is None
        assert machine.gpu.endpoint is None
        assert not machine.cc_enabled

    def test_enabled_has_synced_endpoints(self):
        machine = build_machine(CcMode.ENABLED)
        assert machine.cpu_endpoint.tx_iv.current == machine.gpu.endpoint.rx_iv.current
        assert machine.gpu.endpoint.tx_iv.current == machine.cpu_endpoint.rx_iv.current

    def test_machines_are_isolated(self):
        a = build_machine(CcMode.ENABLED)
        b = build_machine(CcMode.ENABLED)
        a.cpu_endpoint.encrypt_next(b"x")
        assert b.cpu_endpoint.tx_iv.current == 1

    def test_thread_configuration(self):
        machine = build_machine(CcMode.ENABLED, enc_threads=4, dec_threads=2)
        assert machine.engine.enc_threads == 4
        assert machine.engine.dec_threads == 2


class TestPlainRuntime:
    def test_h2d_functional(self):
        machine, ctx = make(CcMode.DISABLED)
        region = machine.host_memory.allocate(1 * MB, "w", b"weights")

        def app():
            handle = ctx.memcpy_h2d(region.chunk())
            yield handle.complete

        machine.sim.process(app())
        machine.run()
        assert machine.gpu.read_plaintext("w") == b"weights"

    def test_h2d_api_returns_fast(self):
        machine, ctx = make(CcMode.DISABLED)
        region = machine.host_memory.allocate(32 * MB, "w", b"x")
        times = {}

        def app():
            handle = ctx.memcpy_h2d(region.chunk())
            yield handle.api_done
            times["api"] = machine.sim.now
            yield handle.complete
            times["complete"] = machine.sim.now

        machine.sim.process(app())
        machine.run()
        assert times["api"] == pytest.approx(1.4e-6)
        assert times["complete"] == pytest.approx(
            machine.params.ncc_occupancy(32 * MB), rel=0.01
        )

    def test_d2h_functional(self):
        machine, ctx = make(CcMode.DISABLED)
        src = machine.host_memory.allocate(1 * MB, "kv", b"kv-bytes")
        dst = machine.host_memory.allocate(1 * MB, "out", b"")

        def app():
            yield ctx.memcpy_h2d(src.chunk()).complete
            yield ctx.memcpy_d2h(MemoryChunk(dst.addr, 1 * MB, b"", "kv")).complete

        machine.sim.process(app())
        machine.run()
        assert machine.host_memory.read(dst.addr) == b"kv-bytes"


class TestCcRuntime:
    def test_h2d_blocks_on_encryption(self):
        machine, ctx = make(CcMode.ENABLED)
        region = machine.host_memory.allocate(32 * MB, "w", b"x")
        times = {}

        def app():
            handle = ctx.memcpy_h2d(region.chunk())
            yield handle.api_done
            times["api"] = machine.sim.now

        machine.sim.process(app())
        machine.run()
        assert times["api"] == pytest.approx(machine.params.cc_occupancy(32 * MB), rel=0.01)

    def test_h2d_functional_authenticated(self):
        machine, ctx = make(CcMode.ENABLED)
        region = machine.host_memory.allocate(1 * MB, "w", b"secret")

        def app():
            yield ctx.memcpy_h2d(region.chunk()).complete

        machine.sim.process(app())
        machine.run()
        assert machine.gpu.read_plaintext("w") == b"secret"
        assert machine.gpu.auth_failures == 0

    def test_d2h_roundtrip(self):
        machine, ctx = make(CcMode.ENABLED)
        src = machine.host_memory.allocate(1 * MB, "kv", b"kv-data")
        dst = machine.host_memory.allocate(1 * MB, "out", b"")

        def app():
            yield ctx.memcpy_h2d(src.chunk()).complete
            yield ctx.memcpy_d2h(MemoryChunk(dst.addr, 1 * MB, b"", "kv")).complete

        machine.sim.process(app())
        machine.run()
        assert machine.host_memory.read(dst.addr) == b"kv-data"

    def test_iv_progression_matches_transfers(self):
        machine, ctx = make(CcMode.ENABLED)
        regions = [machine.host_memory.allocate(1 * MB, f"w{i}", b"x") for i in range(3)]

        def app():
            for region in regions:
                ctx.memcpy_h2d(region.chunk())
            yield ctx.synchronize()

        machine.sim.process(app())
        machine.run()
        assert machine.cpu_endpoint.tx_iv.consumed == 3
        assert machine.gpu.endpoint.rx_iv.consumed == 3

    def test_multi_thread_cc_keeps_iv_order(self):
        """Several transfers of different sizes on a 4-thread CC
        machine must still authenticate — the wire stays IV-ordered
        even when the encryptions overlap (this caught a real bug)."""
        machine, ctx = make(CcMode.ENABLED, enc_threads=4, dec_threads=4)
        sizes = [8 * MB, 1 * MB, 4 * MB, 2 * MB]
        regions = [
            machine.host_memory.allocate(size, f"w{i}", f"w{i}".encode())
            for i, size in enumerate(sizes)
        ]

        def app():
            for region in regions:
                ctx.memcpy_h2d(region.chunk())
            yield ctx.synchronize()

        machine.sim.process(app())
        machine.run()
        assert machine.gpu.auth_failures == 0
        assert machine.gpu.read_plaintext("w3") == b"w3"


class TestRuntimeCommon:
    def test_synchronize_waits_everything(self):
        machine, ctx = make(CcMode.DISABLED)
        regions = [machine.host_memory.allocate(8 * MB, f"w{i}", b"x") for i in range(3)]
        times = {}

        def app():
            handles = [ctx.memcpy_h2d(r.chunk()) for r in regions]
            yield ctx.synchronize()
            times["sync"] = machine.sim.now
            assert all(h.complete.triggered for h in handles)

        machine.sim.process(app())
        machine.run()
        assert "sync" in times

    def test_trace_records_everything(self):
        machine, ctx = make(CcMode.DISABLED)
        region = machine.host_memory.allocate(1 * MB, "w", b"x")

        def app():
            yield ctx.memcpy_h2d(region.chunk()).complete

        machine.sim.process(app())
        machine.run()
        assert len(ctx.trace) == 1
        record = ctx.trace[0]
        assert record.direction == "h2d"
        assert record.size == 1 * MB
        assert record.tag == "w"

    def test_observers_called(self):
        machine, ctx = make(CcMode.DISABLED)
        region = machine.host_memory.allocate(1 * MB, "w", b"x")
        seen = []
        ctx.add_observer(lambda record: seen.append(record.tag))

        def app():
            yield ctx.memcpy_h2d(region.chunk()).complete

        machine.sim.process(app())
        machine.run()
        assert seen == ["w"]

    def test_cpu_access_is_immediate_for_baselines(self):
        machine, ctx = make(CcMode.ENABLED)
        event = ctx.cpu_access(12345)
        assert event.triggered

    def test_hints_are_accepted(self):
        machine, ctx = make(CcMode.DISABLED)
        ctx.hint_weight_chunk_size(1 * MB)  # no-op, must not raise
        ctx.hint_kv_block_size(2 * MB)
