"""Calibration tests: the hardware model must reproduce Fig. 2."""

import pytest

from repro.hw import HW_PACKS, HardwareParams, KB, MB, default_params, get_params, pack_names


@pytest.fixture
def params():
    return default_params()


class TestFig2Latency:
    """Latency column of the paper's microbenchmark table."""

    def test_ncc_latency_flat(self, params):
        # Paper: 1.43 / 1.17 / 1.19 / 1.43 µs — async return, flat.
        for size in (32, 128 * KB, 1 * MB, 32 * MB):
            assert params.ncc_api_latency(size) == pytest.approx(1.4e-6)

    @pytest.mark.parametrize(
        "size,expected_us,tol",
        [(32, 14.93, 0.05), (128 * KB, 22.81, 0.05), (1 * MB, 162.5, 0.1), (32 * MB, 5252.1, 0.1)],
    )
    def test_cc_latency_matches_paper(self, params, size, expected_us, tol):
        measured = params.cc_api_latency(size) * 1e6
        assert measured == pytest.approx(expected_us, rel=tol)


class TestFig2Throughput:
    """Throughput column (back-to-back occupancy)."""

    @pytest.mark.parametrize(
        "size,expected_gbps,tol",
        [(128 * KB, 27.16, 0.15), (1 * MB, 48.2, 0.1), (32 * MB, 55.31, 0.05)],
    )
    def test_ncc_throughput(self, params, size, expected_gbps, tol):
        measured = size / params.ncc_occupancy(size) / 1e9
        assert measured == pytest.approx(expected_gbps, rel=tol)

    @pytest.mark.parametrize(
        "size,expected_gbps,tol",
        [(128 * KB, 3.32, 0.15), (1 * MB, 5.82, 0.05), (32 * MB, 5.83, 0.1)],
    )
    def test_cc_throughput(self, params, size, expected_gbps, tol):
        measured = size / params.cc_occupancy(size) / 1e9
        assert measured == pytest.approx(expected_gbps, rel=tol)


class TestDerivedCosts:
    def test_enc_time_scales_with_threads(self, params):
        one = params.enc_time(1 * MB, threads=1)
        four = params.enc_time(1 * MB, threads=4)
        assert four < one
        # Per-thread bandwidth is additive (minus the fixed overhead).
        ratio = (one - params.cc_stream_overhead) / (four - params.cc_stream_overhead)
        assert ratio == pytest.approx(4.0)

    def test_enc_time_thread_validation(self, params):
        with pytest.raises(ValueError):
            params.enc_time(1024, threads=0)

    def test_cc_dma_slower_than_native(self, params):
        assert params.cc_dma_bandwidth < params.pcie_bandwidth

    def test_cc_dma_faster_than_single_thread_aes(self, params):
        assert params.cc_dma_bandwidth > params.enc_bandwidth_per_thread

    def test_with_overrides(self, params):
        tweaked = params.with_overrides(cc_dma_bandwidth=1.0)
        assert tweaked.cc_dma_bandwidth == 1.0
        assert params.cc_dma_bandwidth != 1.0  # original untouched

    def test_gpu_memory_is_80gb(self, params):
        assert params.gpu_memory_bytes == 80 * (1 << 30)


class TestHardwarePacks:
    def test_registry_names(self):
        assert pack_names() == ["b300-cc", "cpu-tee", "h100-cc"]
        assert set(HW_PACKS) == set(pack_names())

    def test_h100_pack_is_the_default_calibration(self):
        assert get_params("h100-cc") == default_params()

    def test_unknown_pack(self):
        with pytest.raises(ValueError, match="unknown hardware pack"):
            get_params("tpu-v9")

    def test_packs_are_fresh_instances(self):
        a, b = get_params("b300-cc"), get_params("b300-cc")
        assert a == b and a is not b

    def test_b300_serialized_bridge_shape(self):
        """Blackwell: GPU-local speed up, CC bridge ceiling ~flat.

        The compute:bridge ratio must widen versus H100 — that is the
        entire point of the pack (bridge-bound, not encryption-bound).
        """
        h100, b300 = get_params("h100-cc"), get_params("b300-cc")
        assert b300.gpu.flops > 2 * h100.gpu.flops
        assert b300.gpu.hbm_bandwidth > 2 * h100.gpu.hbm_bandwidth
        assert b300.pcie_bandwidth > h100.pcie_bandwidth
        # The serialized CC bridge barely moves between generations...
        assert b300.cc_dma_bandwidth < 1.2 * h100.cc_dma_bandwidth
        # ...so the clear-vs-CC bridge gap widens.
        h100_gap = h100.pcie_bandwidth / h100.cc_dma_bandwidth
        b300_gap = b300.pcie_bandwidth / b300.cc_dma_bandwidth
        assert b300_gap > h100_gap

    def test_cpu_tee_compute_bound_shape(self):
        """CPU TEE: transfers nearly free, compute the frontier."""
        h100, tee = get_params("h100-cc"), get_params("cpu-tee")
        assert tee.gpu.flops < h100.gpu.flops / 50
        assert tee.cc_control_latency < h100.cc_control_latency / 4
        assert tee.cc_dma_bandwidth > h100.cc_dma_bandwidth
        # Data movement under CC is cheaper than H100's *clear* path.
        assert tee.cc_dma_time(1 * MB) < h100.ncc_occupancy(1 * MB)
