"""Tests for the crypto engine, GPU enclave, PCIe link and DMA staging."""

import pytest

from repro.crypto import AuthenticationError, SecureSession
from repro.hw import CryptoEngine, DmaStaging, GpuEnclave, GpuOutOfMemory, MB, MemoryChunk, default_params
from repro.hw.pcie import PcieLink
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def params():
    return default_params()


class TestCryptoEngine:
    def test_serial_jobs_queue(self, sim, params):
        engine = CryptoEngine(sim, params, enc_threads=1)
        done = []
        engine.submit_encrypt(1 * MB).add_callback(lambda e: done.append(sim.now))
        engine.submit_encrypt(1 * MB).add_callback(lambda e: done.append(sim.now))
        sim.run()
        single = params.enc_time(1 * MB)
        assert done[0] == pytest.approx(single)
        assert done[1] == pytest.approx(2 * single)

    def test_parallel_split_speeds_up(self, sim, params):
        engine = CryptoEngine(sim, params, enc_threads=4)
        done = []
        engine.submit_encrypt_parallel(4 * MB).add_callback(lambda e: done.append(sim.now))
        sim.run()
        assert done[0] == pytest.approx(params.enc_time(1 * MB), rel=0.01)

    def test_parallel_clamped_to_pool(self, sim, params):
        engine = CryptoEngine(sim, params, enc_threads=2)
        done = []
        engine.submit_encrypt_parallel(4 * MB, ways=16).add_callback(
            lambda e: done.append(sim.now)
        )
        sim.run()
        assert done[0] == pytest.approx(params.enc_time(2 * MB), rel=0.01)

    def test_inline_cc_cost(self, sim, params):
        engine = CryptoEngine(sim, params)
        done = []
        engine.submit_encrypt_inline_cc(1 * MB).add_callback(lambda e: done.append(sim.now))
        sim.run()
        assert done[0] == pytest.approx(params.cc_occupancy(1 * MB))

    def test_byte_accounting(self, sim, params):
        engine = CryptoEngine(sim, params)
        engine.submit_encrypt(100)
        engine.submit_decrypt(200)
        assert engine.bytes_encrypted == 100
        assert engine.bytes_decrypted == 200

    def test_thread_validation(self, sim, params):
        with pytest.raises(ValueError):
            CryptoEngine(sim, params, enc_threads=0)

    def test_utilization(self, sim, params):
        engine = CryptoEngine(sim, params, enc_threads=1, dec_threads=1)
        engine.submit_encrypt(int(params.enc_bandwidth_per_thread))  # ~1 s of work
        sim.run()
        horizon = sim.now
        assert 0.4 < engine.utilization(horizon) <= 0.51  # one of two pools busy


class TestGpuEnclave:
    def test_alloc_free_accounting(self, sim, params):
        gpu = GpuEnclave(sim, params)
        gpu.alloc("weights", 60 << 30)
        assert gpu.used == 60 << 30
        assert gpu.free == params.gpu_memory_bytes - (60 << 30)
        assert gpu.free_alloc("weights") == 60 << 30
        assert gpu.used == 0

    def test_oom(self, sim, params):
        gpu = GpuEnclave(sim, params)
        with pytest.raises(GpuOutOfMemory):
            gpu.alloc("weights", params.gpu_memory_bytes + 1)

    def test_copy_engine_roundtrip(self, sim, params):
        cpu, gpu_end = SecureSession(bytes(16)).endpoints()
        gpu = GpuEnclave(sim, params, endpoint=gpu_end)
        chunk = MemoryChunk(0, 1024, b"layer-0", "layer.0")
        message = cpu.encrypt_next(chunk.payload, nbytes_logical=chunk.size)
        assert gpu.receive_ciphertext(chunk, message) == b"layer-0"
        assert gpu.read_plaintext("layer.0") == b"layer-0"

    def test_copy_engine_detects_desync(self, sim, params):
        cpu, gpu_end = SecureSession(bytes(16)).endpoints()
        gpu = GpuEnclave(sim, params, endpoint=gpu_end)
        chunk = MemoryChunk(0, 1024, b"x", "x")
        cpu.encrypt_next(b"skipped")  # Consumes an IV the GPU never sees.
        message = cpu.encrypt_next(b"x")
        with pytest.raises(AuthenticationError):
            gpu.receive_ciphertext(chunk, message)
        assert gpu.auth_failures == 1

    def test_cc_required_for_ciphertext(self, sim, params):
        gpu = GpuEnclave(sim, params, endpoint=None)
        with pytest.raises(RuntimeError):
            gpu.receive_ciphertext(MemoryChunk(0, 1, b"", "t"), None)

    def test_compute_roofline_compute_bound(self, sim, params):
        gpu = GpuEnclave(sim, params)
        flops = params.gpu.flops  # 1 second of pure compute
        t = gpu.compute_time(flops, bytes_touched=1, layers=0)
        assert t == pytest.approx(1.0)

    def test_compute_roofline_memory_bound(self, sim, params):
        gpu = GpuEnclave(sim, params)
        nbytes = params.gpu.hbm_bandwidth  # 1 second of pure reads
        t = gpu.compute_time(1.0, bytes_touched=nbytes, layers=0)
        assert t == pytest.approx(1.0)

    def test_compute_serializes(self, sim, params):
        gpu = GpuEnclave(sim, params)
        done = []
        flops = params.gpu.flops / 10.0

        def proc(name):
            yield gpu.compute(flops, 1, layers=0)
            done.append((round(sim.now, 6), name))

        sim.process(proc("a"))
        sim.process(proc("b"))
        sim.run()
        assert done == [(0.1, "a"), (0.2, "b")]


class TestPcieLink:
    def test_directions_independent(self, sim, params):
        link = PcieLink(sim, params)
        done = []

        def up():
            yield link.transfer_h2d(int(params.pcie_bandwidth))
            done.append(("h2d", sim.now))

        def down():
            yield link.transfer_d2h(int(params.pcie_bandwidth))
            done.append(("d2h", sim.now))

        sim.process(up())
        sim.process(down())
        sim.run()
        # Full-duplex: both finish at ~1 s, not 2 s.
        assert all(t == pytest.approx(1.0, rel=0.01) for _, t in done)

    def test_cc_path_is_slower(self, sim, params):
        link = PcieLink(sim, params)
        times = {}

        def move(label, cc):
            yield link.transfer_h2d(1 << 30, cc_path=cc)
            times[label] = sim.now

        sim.process(move("native", False))
        sim.process(move("cc", True))
        sim.run()
        assert times["cc"] > times["native"]

    def test_bytes_moved_totals(self, sim, params):
        link = PcieLink(sim, params)
        link.transfer_h2d(100)
        link.transfer_d2h(200, cc_path=True)
        sim.run()
        assert link.bytes_moved == 300


class TestDmaStaging:
    def test_stage_counts_pieces(self, sim):
        staging = DmaStaging(sim, buffer_bytes=1 * MB, buffers=2)

        def proc():
            yield from staging.stage(3 * MB)

        sim.process(proc())
        sim.run()
        assert staging.stage_count == 3

    def test_bounded_outstanding(self, sim):
        staging = DmaStaging(sim, buffer_bytes=1 * MB, buffers=2)

        def proc():
            yield from staging.stage(64 * MB)

        for _ in range(4):
            sim.process(proc())
        sim.run()
        assert staging.max_outstanding <= 2

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            DmaStaging(sim, buffer_bytes=0)
