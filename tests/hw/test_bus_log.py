"""Bus-snooper log unit tests (the §8.1 attacker's viewpoint)."""

import pytest

from repro.hw import BusRecord, default_params
from repro.hw.pcie import PcieLink
from repro.sim import Simulator


@pytest.fixture
def link():
    return PcieLink(Simulator(), default_params())


class TestBusLog:
    def test_records_both_directions(self, link):
        link.transfer_h2d(100)
        link.transfer_d2h(200, cc_path=True)
        link.sim.run()
        assert [(r.direction, r.nbytes) for r in link.bus_log] == [
            ("h2d", 100), ("d2h", 200),
        ]

    def test_records_are_timestamped(self, link):
        def proc():
            yield link.sim.timeout(1.0)
            link.transfer_h2d(100)

        link.sim.process(proc())
        link.sim.run()
        assert link.bus_log[0].time == pytest.approx(1.0)

    def test_observed_nops_counts_one_byte(self, link):
        link.transfer_h2d(1, cc_path=True)
        link.transfer_h2d(1, cc_path=True)
        link.transfer_h2d(4096, cc_path=True)
        link.sim.run()
        assert link.observed_nops() == 2

    def test_record_is_metadata_only(self):
        record = BusRecord(0.0, "h2d", 42)
        assert not hasattr(record, "payload")
        assert not hasattr(record, "plaintext")
