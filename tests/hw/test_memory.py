"""Host-memory tests: allocation, page protection, fault dispatch."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw import AccessViolation, HostMemory, MemoryChunk


@pytest.fixture
def memory():
    return HostMemory(capacity=1 << 30, page_size=4096)


class TestAllocation:
    def test_page_alignment(self, memory):
        a = memory.allocate(100, "a")
        b = memory.allocate(100, "b")
        assert a.addr % 4096 == 0
        assert b.addr % 4096 == 0
        assert b.addr >= a.addr + 4096

    def test_zero_size_rejected(self, memory):
        with pytest.raises(ValueError):
            memory.allocate(0)

    def test_exhaustion(self):
        small = HostMemory(capacity=16 * 4096, page_size=4096)
        small.allocate(10 * 4096, "big")
        with pytest.raises(MemoryError):
            small.allocate(10 * 4096, "too-big")

    def test_free_then_lookup_fails(self, memory):
        region = memory.allocate(100, "x")
        memory.free(region)
        with pytest.raises(KeyError):
            memory.region_at(region.addr)

    def test_regions_listing(self, memory):
        memory.allocate(1, "a")
        memory.allocate(1, "b")
        assert sorted(r.tag for r in memory.regions()) == ["a", "b"]

    def test_addresses_never_reused(self, memory):
        region = memory.allocate(100, "a")
        memory.free(region)
        again = memory.allocate(100, "b")
        assert again.addr != region.addr

    def test_page_size_validation(self):
        with pytest.raises(ValueError):
            HostMemory(page_size=1000)  # not a power of two


class TestReadWrite:
    def test_payload_roundtrip(self, memory):
        region = memory.allocate(4096, "x", payload=b"hello")
        assert memory.read(region.addr) == b"hello"
        memory.write(region.addr, b"world")
        assert memory.read(region.addr) == b"world"

    def test_chunk_snapshot(self, memory):
        region = memory.allocate(1 << 20, "weights", payload=b"w0")
        chunk = region.chunk()
        assert chunk == MemoryChunk(region.addr, 1 << 20, b"w0", "weights")
        memory.write(region.addr, b"w1")
        assert chunk.payload == b"w0"  # snapshot is immutable

    def test_chunk_at_checks_permissions(self, memory):
        region = memory.allocate(4096, "x", payload=b"data")
        memory.protect(region.addr, region.size, owner="guard", deny_read=True)
        with pytest.raises(AccessViolation):
            memory.chunk_at(region.addr)

    def test_write_silent_bypasses_protection(self, memory):
        region = memory.allocate(4096, "x", payload=b"old")
        memory.protect(region.addr, region.size, owner="guard", deny_write=True)
        memory.write_silent(region.addr, b"new")
        assert region.payload == bytearray(b"new")


class TestProtection:
    def test_write_protect_blocks_write(self, memory):
        region = memory.allocate(4096, "x", payload=b"p")
        memory.protect(region.addr, region.size, owner="spec:1")
        with pytest.raises(AccessViolation):
            memory.write(region.addr, b"q")

    def test_write_protect_allows_read(self, memory):
        region = memory.allocate(4096, "x", payload=b"p")
        memory.protect(region.addr, region.size, owner="spec:1", deny_write=True)
        assert memory.read(region.addr) == b"p"

    def test_read_protect_blocks_read(self, memory):
        region = memory.allocate(4096, "x", payload=b"p")
        memory.protect(region.addr, region.size, owner="dec", deny_read=True, deny_write=True)
        with pytest.raises(AccessViolation):
            memory.read(region.addr)

    def test_unprotect_by_owner(self, memory):
        region = memory.allocate(4096, "x", payload=b"p")
        memory.protect(region.addr, region.size, owner="spec:1")
        memory.protect(region.addr, region.size, owner="spec:2")
        assert memory.unprotect("spec:1") == 1
        assert memory.protections_on(region.addr, region.size) == ["spec:2"]

    def test_unprotect_range_limited(self, memory):
        a = memory.allocate(4096, "a")
        b = memory.allocate(4096, "b")
        memory.protect(a.addr, a.size, owner="o")
        memory.protect(b.addr, b.size, owner="o")
        assert memory.unprotect("o", addr=a.addr, size=a.size) == 1
        assert memory.is_protected(b.addr, b.size, for_write=True)

    def test_protection_requires_a_mode(self, memory):
        with pytest.raises(ValueError):
            memory.protect(0, 1, owner="o", deny_read=False, deny_write=False)

    def test_free_drops_protections(self, memory):
        region = memory.allocate(4096, "x")
        memory.protect(region.addr, region.size, owner="o")
        memory.free(region)
        assert not memory.is_protected(region.addr, region.size, for_write=True)


class TestFaults:
    def test_fault_handler_resolves(self, memory):
        region = memory.allocate(4096, "x", payload=b"p")
        memory.protect(region.addr, region.size, owner="spec:1")
        faults = []

        def handler(fault):
            faults.append(fault)
            memory.unprotect("spec:1")

        memory.on_fault(handler)
        memory.write(region.addr, b"q")
        assert memory.read(region.addr) == b"q"
        assert len(faults) == 1
        assert faults[0].is_write
        assert "spec:1" in faults[0].owners

    def test_unresolved_fault_raises(self, memory):
        region = memory.allocate(4096, "x", payload=b"p")
        memory.protect(region.addr, region.size, owner="spec:1")
        memory.on_fault(lambda fault: None)  # Does not clear anything.
        with pytest.raises(AccessViolation):
            memory.write(region.addr, b"q")

    def test_fault_count(self, memory):
        region = memory.allocate(4096, "x", payload=b"p")
        memory.protect(region.addr, region.size, owner="o")
        memory.on_fault(lambda fault: memory.unprotect("o"))
        memory.write(region.addr, b"q")
        memory.write(region.addr, b"r")  # No protection left: no fault.
        assert memory.fault_count == 1

    def test_on_free_handler(self, memory):
        freed = []
        memory.on_free(lambda region: freed.append(region.tag))
        region = memory.allocate(4096, "x")
        memory.free(region)
        assert freed == ["x"]


class TestMemoryChunk:
    def test_overlap(self):
        chunk = MemoryChunk(100, 50, b"")
        assert chunk.overlaps(120, 10)
        assert chunk.overlaps(90, 20)
        assert not chunk.overlaps(150, 10)
        assert not chunk.overlaps(0, 100)

    def test_payload_must_fit(self):
        with pytest.raises(ValueError):
            MemoryChunk(0, 2, b"too-long-payload")

    @given(addr=st.integers(min_value=0, max_value=10_000),
           size=st.integers(min_value=1, max_value=1000),
           other=st.integers(min_value=0, max_value=10_000),
           other_size=st.integers(min_value=1, max_value=1000))
    @settings(max_examples=50, deadline=None)
    def test_overlap_symmetry(self, addr, size, other, other_size):
        a = MemoryChunk(addr, size, b"")
        b = MemoryChunk(other, other_size, b"")
        assert a.overlaps(other, other_size) == b.overlaps(addr, size)
