"""Workload-generator tests: determinism and distribution shape."""

import pytest

from repro.sim import SeededRng, mean
from repro.workloads import (
    ALPACA,
    ALPACA_SERVE,
    FLEXGEN_256_32,
    FLEXGEN_32_128,
    FineTuneBatch,
    Request,
    SHAREGPT,
    SHAREGPT_SERVE,
    generate_trace,
    poisson_trace,
    synthetic_requests,
    ultrachat_batches,
)


def _percentile(values, q):
    ordered = sorted(values)
    return ordered[int(q * len(ordered))]


class TestRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            Request(0, 0.0, prompt_len=0, output_len=1)
        with pytest.raises(ValueError):
            Request(0, 0.0, prompt_len=1, output_len=1, parallel_n=0)

    def test_total_output(self):
        request = Request(0, 0.0, prompt_len=10, output_len=20, parallel_n=3)
        assert request.total_output_tokens == 60


class TestSynthetic:
    def test_fixed_shapes(self):
        assert FLEXGEN_32_128.prompt_len == 32
        assert FLEXGEN_32_128.output_len == 128
        assert FLEXGEN_256_32.label == "in256/out32"

    def test_requests_identical(self):
        requests = synthetic_requests(FLEXGEN_32_128, 10)
        assert len(requests) == 10
        assert all(r.prompt_len == 32 and r.output_len == 128 for r in requests)

    def test_count_validation(self):
        with pytest.raises(ValueError):
            synthetic_requests(FLEXGEN_32_128, 0)


class TestTraces:
    def test_sharegpt_is_long_alpaca_is_short(self):
        rng = SeededRng(1)
        share = generate_trace(SHAREGPT, 300, rng)
        alpaca = generate_trace(ALPACA, 300, rng)
        assert mean([r.prompt_len for r in share]) > 3 * mean([r.prompt_len for r in alpaca])
        assert mean([r.output_len for r in share]) > 3 * mean([r.output_len for r in alpaca])

    def test_mean_lengths_near_spec(self):
        requests = generate_trace(SHAREGPT, 2000, SeededRng(2))
        assert mean([r.prompt_len for r in requests]) == pytest.approx(161, rel=0.35)
        assert mean([r.output_len for r in requests]) == pytest.approx(338, rel=0.35)

    def test_lengths_clamped(self):
        requests = generate_trace(SHAREGPT, 500, SeededRng(3))
        assert all(4 <= r.prompt_len <= SHAREGPT.max_prompt for r in requests)
        assert all(4 <= r.output_len <= SHAREGPT.max_output for r in requests)

    def test_deterministic(self):
        a = generate_trace(ALPACA, 50, SeededRng(7))
        b = generate_trace(ALPACA, 50, SeededRng(7))
        assert [(r.prompt_len, r.output_len) for r in a] == [
            (r.prompt_len, r.output_len) for r in b
        ]


class TestServeTraces:
    """Online-serving presets: same published prompt statistics as the
    batch traces, with outputs clamped to interactive completion sizes."""

    def test_prompts_keep_the_published_means(self):
        share = generate_trace(SHAREGPT_SERVE, 2000, SeededRng(2))
        alpaca = generate_trace(ALPACA_SERVE, 2000, SeededRng(2))
        # ShareGPT's clamp at 512 pulls the arithmetic mean below 161.
        assert mean([r.prompt_len for r in share]) == pytest.approx(150, rel=0.2)
        assert mean([r.prompt_len for r in alpaca]) == pytest.approx(19, rel=0.2)

    def test_outputs_clamped_to_interactive_sizes(self):
        share = generate_trace(SHAREGPT_SERVE, 1000, SeededRng(3))
        alpaca = generate_trace(ALPACA_SERVE, 1000, SeededRng(3))
        assert all(r.output_len <= SHAREGPT_SERVE.max_output == 128 for r in share)
        assert all(r.output_len <= ALPACA_SERVE.max_output == 64 for r in alpaca)
        assert mean([r.output_len for r in share]) < mean(
            [r.output_len for r in generate_trace(SHAREGPT, 1000, SeededRng(3))]
        )

    def test_lognormal_shape_median_below_mean(self):
        # A heavy right tail: p50 well under the mean, p95 near the clamp.
        requests = generate_trace(SHAREGPT_SERVE, 4000, SeededRng(2))
        prompts = [r.prompt_len for r in requests]
        assert _percentile(prompts, 0.5) < 0.8 * mean(prompts)
        assert _percentile(prompts, 0.95) > 2 * mean(prompts)
        assert all(4 <= p <= SHAREGPT_SERVE.max_prompt for p in prompts)

    def test_serve_presets_deterministic(self):
        a = generate_trace(ALPACA_SERVE, 50, SeededRng(11))
        b = generate_trace(ALPACA_SERVE, 50, SeededRng(11))
        assert [(r.prompt_len, r.output_len) for r in a] == [
            (r.prompt_len, r.output_len) for r in b
        ]


class TestPoisson:
    def test_arrivals_sorted_and_bounded(self):
        requests = poisson_trace(ALPACA, rate=5.0, duration=20.0, rng=SeededRng(1))
        times = [r.arrival_time for r in requests]
        assert times == sorted(times)
        assert all(0 < t < 20.0 for t in times)

    def test_rate_matches(self):
        requests = poisson_trace(ALPACA, rate=10.0, duration=100.0, rng=SeededRng(2))
        assert len(requests) == pytest.approx(1000, rel=0.15)

    def test_parallel_n_propagates(self):
        requests = poisson_trace(ALPACA, rate=5.0, duration=10.0, rng=SeededRng(1), parallel_n=6)
        assert all(r.parallel_n == 6 for r in requests)

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_trace(ALPACA, rate=0.0, duration=1.0, rng=SeededRng(1))

    def test_ids_sequential(self):
        requests = poisson_trace(ALPACA, rate=5.0, duration=10.0, rng=SeededRng(1))
        assert [r.request_id for r in requests] == list(range(len(requests)))


class TestFineTune:
    def test_batch_shape(self):
        batches = ultrachat_batches(4, 8, SeededRng(5))
        assert len(batches) == 4
        assert all(len(b.seq_lens) == 8 for b in batches)

    def test_token_totals_positive(self):
        batches = ultrachat_batches(3, 8, SeededRng(5))
        assert all(b.total_tokens > 8 * 64 for b in batches)

    def test_mean_length_near_ultrachat(self):
        batches = ultrachat_batches(40, 16, SeededRng(6))
        lens = [l for b in batches for l in b.seq_lens]
        assert mean(lens) == pytest.approx(1100, rel=0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            ultrachat_batches(0, 8, SeededRng(1))

    def test_empty_batch_total(self):
        assert FineTuneBatch(0).total_tokens == 0
