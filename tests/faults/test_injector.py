"""FaultInjector: determinism, domain stream isolation, window gating."""

from repro.faults import FaultInjector, FaultPlan

STORM = FaultPlan.storm(0.5)


def decisions(injector, n=200):
    """A fixed probe sequence over every per-transfer decision kind."""
    out = []
    for _ in range(n):
        out.append((
            injector.mispredict(),
            injector.corrupt_tag(),
            injector.desync_iv(),
            injector.pcie_drop("h2d"),
            round(injector.pcie_jitter("h2d"), 12),
        ))
    return out


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        a = FaultInjector(STORM, seed=123)
        b = FaultInjector(STORM, seed=123)
        assert decisions(a) == decisions(b)
        assert a.counts == b.counts

    def test_different_seeds_diverge(self):
        a = FaultInjector(STORM, seed=123)
        b = FaultInjector(STORM, seed=124)
        assert decisions(a) != decisions(b)

    def test_domains_are_isolated(self):
        # Interleaving extra PCIe draws must not perturb which swaps
        # the crypto domain decides to corrupt.
        plan = FaultPlan(tag_corrupt_rate=0.3, pcie_drop_rate=0.3)
        a = FaultInjector(plan, seed=9)
        b = FaultInjector(plan, seed=9)
        crypto_a = [a.corrupt_tag() for _ in range(100)]
        crypto_b = []
        for _ in range(100):
            b.pcie_drop("h2d")  # extra traffic in another domain
            crypto_b.append(b.corrupt_tag())
        assert crypto_a == crypto_b

    def test_children_decoupled_but_deterministic(self):
        root1 = FaultInjector(STORM, seed=7)
        root2 = FaultInjector(STORM, seed=7)
        assert decisions(root1.child("r0")) == decisions(root2.child("r0"))
        assert decisions(root1.child("r0")) != decisions(root2.child("r1"))


class TestWindowGating:
    def test_inactive_before_start(self):
        class Clock:
            now = 0.0
        injector = FaultInjector(STORM.windowed(1.0, 2.0), seed=1).bind(Clock())
        assert not any(any(d[:4]) for d in decisions(injector, 50))
        assert injector.injected_total == 0
        Clock.now = 1.5
        assert any(any(d[:4]) for d in decisions(injector, 50))
        Clock.now = 2.0
        before = injector.injected_total
        decisions(injector, 50)
        assert injector.injected_total == before

    def test_zero_rates_never_fire(self):
        injector = FaultInjector(FaultPlan(), seed=1)
        assert not any(any(d[:4]) for d in decisions(injector, 50))


class TestBookkeeping:
    def test_counts_reflect_fired_faults(self):
        injector = FaultInjector(STORM, seed=42)
        decisions(injector, 300)
        assert injector.injected_total == sum(injector.counts.values())
        assert injector.counts.get("mispredict", 0) > 0
        assert injector.counts.get("tag-corrupt", 0) > 0

    def test_note_recovery_counts_without_hub(self):
        injector = FaultInjector(STORM, seed=1)
        injector.note_recovery("auth-recover", attempts=2)
        injector.note_recovery("auth-recover")
        injector.note_recovery("degrade")
        assert injector.recoveries == {"auth-recover": 2, "degrade": 1}
        assert injector.recovery_total == 3

    def test_engine_service_time_slowdown(self):
        plan = FaultPlan(engine_slowdown=2.0)
        injector = FaultInjector(plan, seed=1)
        assert injector.engine_service_time(1e-3, "enc") >= 2e-3

    def test_crash_schedule_deterministic(self):
        plan = FaultPlan(replica_crash_rate=2.0)
        a = FaultInjector(plan, seed=5)
        b = FaultInjector(plan, seed=5)
        seq_a = [(a.next_crash_interval(), a.pick_replica(4)) for _ in range(20)]
        seq_b = [(b.next_crash_interval(), b.pick_replica(4)) for _ in range(20)]
        assert seq_a == seq_b
        assert all(interval > 0 for interval, _ in seq_a)
        assert all(0 <= victim < 4 for _, victim in seq_a)

    def test_no_crash_schedule_without_rate(self):
        assert FaultInjector(FaultPlan(), seed=1).next_crash_interval() is None
