"""FaultPlan: validation, live window, and the storm factory."""

import pytest

from repro.faults import FaultPlan


class TestValidation:
    def test_defaults_inject_nothing(self):
        plan = FaultPlan()
        assert not plan.any_faults

    @pytest.mark.parametrize("field", [
        "pcie_jitter_rate", "pcie_drop_rate", "engine_stall_rate",
        "tag_corrupt_rate", "iv_desync_rate", "mispredict_rate",
    ])
    def test_rates_must_be_probabilities(self, field):
        with pytest.raises(ValueError):
            FaultPlan(**{field: 1.5})
        with pytest.raises(ValueError):
            FaultPlan(**{field: -0.1})

    def test_slowdown_below_nominal_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(engine_slowdown=0.5)

    def test_window_must_be_ordered(self):
        with pytest.raises(ValueError):
            FaultPlan(start=2.0, stop=1.0)

    def test_negative_durations_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(pcie_jitter_s=-1e-6)
        with pytest.raises(ValueError):
            FaultPlan(replica_recover_after=-1.0)


class TestWindow:
    def test_bounded_window(self):
        plan = FaultPlan(start=1.0, stop=2.0)
        assert not plan.active(0.5)
        assert plan.active(1.0)
        assert plan.active(1.999)
        assert not plan.active(2.0)

    def test_open_ended_window(self):
        plan = FaultPlan(start=0.5)
        assert not plan.active(0.0)
        assert plan.active(1e9)

    def test_windowed_returns_new_plan(self):
        plan = FaultPlan(mispredict_rate=0.3)
        shifted = plan.windowed(5.0, 6.0)
        assert (shifted.start, shifted.stop) == (5.0, 6.0)
        assert shifted.mispredict_rate == 0.3
        assert plan.stop is None  # original untouched (frozen)


class TestStorm:
    def test_storm_shape(self):
        plan = FaultPlan.storm(0.4, start=0.1, stop=0.9)
        assert plan.mispredict_rate == 0.4
        assert plan.iv_desync_rate == pytest.approx(0.1)
        assert plan.tag_corrupt_rate == pytest.approx(0.1)
        assert (plan.start, plan.stop) == (0.1, 0.9)
        assert plan.any_faults

    def test_zero_storm_is_clean(self):
        assert not FaultPlan.storm(0.0).any_faults

    def test_any_faults_sees_every_knob(self):
        assert FaultPlan(engine_slowdown=1.5).any_faults
        assert FaultPlan(replica_crash_rate=0.2).any_faults
        assert FaultPlan(pcie_drop_rate=0.01).any_faults
