"""Runtime-level fault behaviour: recovery, degradation, restoration.

The acceptance scenario for the fault plane lives here: under a
sustained 30% misprediction/desync storm the pipeline must switch to
degraded in-order encryption, complete every request with zero IV
reuse, and return to speculative mode once the faults stop.
"""

import pytest

from repro.cc import CcMode, build_machine
from repro.cluster.tenant import ClusterIvAudit
from repro.core import PipeLLMConfig, PipeLLMRuntime
from repro.faults import FaultInjector, FaultPlan, FaultPolicy, PipelineMode
from repro.hw import MB

# Logical size; payloads stay tiny so pure-Python GCM is cheap. 1 MB
# keeps a 24-layer iteration near 1 ms of simulated time, so the 4 ms
# storm windows below span a few full iterations.
LAYER = 1 * MB


def build(plan, seed=7, policy=None, regions=8):
    injector = FaultInjector(plan, seed=seed)
    machine = build_machine(
        CcMode.ENABLED, enc_threads=8, dec_threads=2, faults=injector
    )
    config = PipeLLMConfig(fault_policy=policy) if policy else None
    runtime = PipeLLMRuntime(machine, config)
    runtime.hint_weight_chunk_size(LAYER)
    audit = ClusterIvAudit()
    machine.cpu_endpoint.attach_audit(audit)
    machine.gpu.endpoint.attach_audit(audit)
    layers = [
        machine.host_memory.allocate(LAYER, f"layer.{i}", f"w{i}".encode())
        for i in range(regions)
    ]
    return machine, runtime, injector, audit, layers


def sweep(machine, runtime, layers, iterations):
    def app():
        for _ in range(iterations):
            for layer in layers:
                handle = runtime.memcpy_h2d(machine.host_memory.chunk_at(layer.addr))
                yield handle.complete

    machine.sim.process(app())
    machine.sim.run()


def assert_bit_exact(machine, layers):
    for layer in layers:
        chunk = machine.host_memory.chunk_at(layer.addr)
        assert machine.gpu._contents[chunk.tag] == bytes(chunk.payload)


class TestAuthRecovery:
    def test_tag_corruption_recovered_by_reencryption(self):
        plan = FaultPlan(name="corrupt", tag_corrupt_rate=0.5)
        machine, runtime, injector, audit, layers = build(plan, regions=4)
        sweep(machine, runtime, layers, iterations=6)
        assert injector.counts["tag-corrupt"] > 0
        assert machine.gpu.auth_failures > 0      # the faults really landed
        assert runtime.auth_recoveries > 0        # ...and were all recovered
        assert injector.recoveries.get("auth-recover", 0) > 0
        assert_bit_exact(machine, layers)

    def test_iv_desync_recovered_with_fresh_ivs(self):
        plan = FaultPlan(name="desync", iv_desync_rate=0.5)
        machine, runtime, injector, audit, layers = build(plan, regions=4)
        sweep(machine, runtime, layers, iterations=6)
        assert injector.counts["iv-desync"] > 0
        # The audit raises on any (key, IV) repeat, so surviving the
        # sweep proves recovery always burned fresh IVs.
        assert audit.observed > 0
        assert_bit_exact(machine, layers)

    def test_rx_never_overtakes_tx(self):
        plan = FaultPlan.storm(0.4)
        machine, runtime, injector, audit, layers = build(plan, regions=4)
        sweep(machine, runtime, layers, iterations=6)
        assert (machine.gpu.endpoint.rx_iv.consumed
                <= machine.cpu_endpoint.tx_iv.consumed)


class TestDegradation:
    def test_storm_degrades_then_restores(self):
        # The ISSUE acceptance scenario: a bounded 30% storm forces
        # degraded in-order mode; once the window closes, the
        # controller probes its way back to speculation.
        plan = FaultPlan.storm(0.3, start=0.0, stop=0.004)
        machine, runtime, injector, audit, layers = build(plan, regions=24)
        sweep(machine, runtime, layers, iterations=40)

        entered = [mode for _, _, mode in runtime.fault_controller.transitions]
        assert PipelineMode.DEGRADED.value in entered
        assert runtime.fault_controller.mode is PipelineMode.SPECULATIVE
        assert runtime.stats()["degraded_seconds"] > 0
        # Every request completed, bit-exact, zero IV reuse (the audit
        # would have raised), despite the storm. Degraded commits
        # bypass the validator, so the two counters partition the run.
        stats = runtime.stats()
        assert stats["swap_requests"] + stats["degraded_commits"] == 24 * 40
        assert audit.observed > 0
        assert_bit_exact(machine, layers)

    def test_degraded_mode_still_completes_everything(self):
        # 100% mispredictions with no stop: the pipeline must park in
        # degraded mode (with periodic probes) and still deliver.
        plan = FaultPlan(name="always-wrong", mispredict_rate=1.0)
        machine, runtime, injector, audit, layers = build(plan, regions=6)
        sweep(machine, runtime, layers, iterations=10)
        entered = [mode for _, _, mode in runtime.fault_controller.transitions]
        assert PipelineMode.DEGRADED.value in entered
        assert runtime.degraded_commits > 0
        assert_bit_exact(machine, layers)

    def test_pinned_policy_never_changes_mode(self):
        plan = FaultPlan.storm(0.3, start=0.0, stop=0.004)
        pinned = FaultPolicy(enter_miss_rate=1.0)
        machine, runtime, injector, audit, layers = build(
            plan, policy=pinned, regions=24
        )
        sweep(machine, runtime, layers, iterations=40)
        assert runtime.fault_controller.transitions == []
        assert runtime.fault_controller.mode is PipelineMode.SPECULATIVE
        assert_bit_exact(machine, layers)

    def test_clean_run_never_degrades(self):
        plan = FaultPlan(name="clean")
        machine, runtime, injector, audit, layers = build(plan, regions=6)
        sweep(machine, runtime, layers, iterations=8)
        assert runtime.fault_controller.transitions == []
        assert machine.gpu.auth_failures == 0
        assert injector.injected_total == 0
        assert_bit_exact(machine, layers)


class TestRequestTimeout:
    def test_watchdog_counts_nothing_on_a_healthy_run(self):
        plan = FaultPlan(name="clean")
        policy = FaultPolicy(request_timeout_s=10.0)
        machine, runtime, injector, audit, layers = build(
            plan, policy=policy, regions=4
        )
        sweep(machine, runtime, layers, iterations=4)
        assert runtime.timeouts == 0
        assert_bit_exact(machine, layers)
