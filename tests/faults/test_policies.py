"""RetryPolicy backoff and the DegradationController state machine."""

import pytest

from repro.faults import DegradationController, FaultPolicy, PipelineMode, RetryPolicy


class TestRetryPolicy:
    def test_exponential_backoff_with_ceiling(self):
        policy = RetryPolicy(max_attempts=8, base_delay_s=10e-6,
                             multiplier=2.0, max_delay_s=50e-6)
        assert policy.delay(1) == pytest.approx(10e-6)
        assert policy.delay(2) == pytest.approx(20e-6)
        assert policy.delay(3) == pytest.approx(40e-6)
        assert policy.delay(4) == pytest.approx(50e-6)  # clamped
        assert policy.delay(7) == pytest.approx(50e-6)

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1.0)


class TestFaultPolicyValidation:
    def test_thresholds_must_be_ordered(self):
        with pytest.raises(ValueError):
            FaultPolicy(enter_miss_rate=0.1, exit_miss_rate=0.2)

    def test_alpha_range(self):
        with pytest.raises(ValueError):
            FaultPolicy(ema_alpha=0.0)
        with pytest.raises(ValueError):
            FaultPolicy(ema_alpha=1.5)

    def test_timeout_must_be_positive_or_none(self):
        FaultPolicy(request_timeout_s=None)
        FaultPolicy(request_timeout_s=0.5)
        with pytest.raises(ValueError):
            FaultPolicy(request_timeout_s=0.0)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def controller(**kw):
    clock = FakeClock()
    policy = FaultPolicy(**kw)
    return DegradationController(policy, clock=clock), clock, policy


class TestDegradationController:
    def test_starts_speculative(self):
        ctl, _, _ = controller()
        assert ctl.mode is PipelineMode.SPECULATIVE
        assert ctl.speculation_enabled
        assert ctl.switches == 0

    def test_cold_start_misses_do_not_degrade(self):
        ctl, _, policy = controller(min_samples=12)
        for _ in range(policy.min_samples - 1):
            ctl.observe(False)
        assert ctl.mode is PipelineMode.SPECULATIVE

    def test_sustained_misses_degrade(self):
        ctl, _, _ = controller()
        for _ in range(30):
            ctl.observe(False)
        assert ctl.mode is PipelineMode.DEGRADED
        assert not ctl.speculation_enabled
        assert ctl.transitions[0][1:] == ("speculative", "degraded")

    def test_all_hits_never_degrade(self):
        ctl, _, _ = controller()
        for _ in range(200):
            ctl.observe(True)
        assert ctl.mode is PipelineMode.SPECULATIVE
        assert ctl.switches == 0

    def test_degraded_ignores_observations_until_hold(self):
        ctl, clock, policy = controller()
        for _ in range(30):
            ctl.observe(False)
        assert ctl.mode is PipelineMode.DEGRADED
        ctl.poll()  # hold not yet elapsed
        assert ctl.mode is PipelineMode.DEGRADED
        clock.now += policy.degraded_hold_s
        ctl.poll()
        assert ctl.mode is PipelineMode.PROBING

    def test_clean_probe_restores_speculation(self):
        ctl, clock, policy = controller()
        for _ in range(30):
            ctl.observe(False)
        clock.now += policy.degraded_hold_s
        ctl.poll()
        for _ in range(policy.probe_samples):
            ctl.observe(True)
        assert ctl.mode is PipelineMode.SPECULATIVE
        assert [t[1:] for t in ctl.transitions] == [
            ("speculative", "degraded"),
            ("degraded", "probing"),
            ("probing", "speculative"),
        ]

    def test_dirty_probe_redegrades(self):
        ctl, clock, policy = controller()
        for _ in range(30):
            ctl.observe(False)
        clock.now += policy.degraded_hold_s
        ctl.poll()
        for _ in range(30):
            ctl.observe(False)
        assert ctl.mode is PipelineMode.DEGRADED
        assert ctl.transitions[-1][1:] == ("probing", "degraded")

    def test_degraded_seconds_accumulates(self):
        ctl, clock, policy = controller(degraded_hold_s=0.05)
        for _ in range(30):
            ctl.observe(False)
        clock.now += 0.03
        assert ctl.degraded_seconds() == pytest.approx(0.03)
        clock.now += 0.02
        ctl.poll()  # -> PROBING, accumulator frozen
        clock.now += 1.0
        assert ctl.degraded_seconds() == pytest.approx(0.05)

    def test_listener_fires_on_every_transition(self):
        ctl, clock, policy = controller()
        seen = []
        ctl.on_transition(lambda prev, mode: seen.append((prev, mode)))
        for _ in range(30):
            ctl.observe(False)
        clock.now += policy.degraded_hold_s
        ctl.poll()
        assert seen == [
            (PipelineMode.SPECULATIVE, PipelineMode.DEGRADED),
            (PipelineMode.DEGRADED, PipelineMode.PROBING),
        ]

    def test_unreachable_threshold_pins_speculative(self):
        # The campaign's pinned-speculative policy: an EMA can never
        # reach 1.0, so the controller must never change mode.
        ctl, _, _ = controller(enter_miss_rate=1.0, exit_miss_rate=0.1)
        for _ in range(500):
            ctl.observe(False)
        assert ctl.mode is PipelineMode.SPECULATIVE
        assert ctl.switches == 0
