"""Property test: random schedules + random storms, invariants hold.

Hypothesis drives random transfer schedules (which region, what
payload, how often) through random fault plans (misprediction, tag
corruption, IV desync, PCIe noise, engine stalls — any mix of rates),
with the degradation controller live. Whatever happens along the way,
two invariants must survive every example:

* **no (key, IV) pair is ever reused** — a ClusterIvAudit observes
  every IV both endpoints consume and raises on any repeat, so the
  test fails loudly on its own if recovery ever replays an IV;
* **every committed buffer round-trips bit-exact** — the plaintext the
  GPU holds at the end equals the bytes the host sent, for every
  region touched, despite forced re-encryptions and mode switches.

All randomness flows through hypothesis' seeded machinery plus the
injector's own seed (drawn as data), so failures shrink and replay.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cc import CcMode, build_machine
from repro.cluster.tenant import ClusterIvAudit
from repro.core import PipeLLMRuntime
from repro.faults import FaultInjector, FaultPlan
from repro.hw import MB

LAYER = 32 * MB  # logical; real payloads below stay tiny

rates = st.floats(min_value=0.0, max_value=0.4, allow_nan=False)

plans = st.builds(
    FaultPlan,
    name=st.just("prop"),
    mispredict_rate=rates,
    tag_corrupt_rate=rates,
    iv_desync_rate=rates,
    pcie_jitter_rate=rates,
    pcie_drop_rate=st.floats(min_value=0.0, max_value=0.1),
    engine_stall_rate=st.floats(min_value=0.0, max_value=0.1),
)

schedules = st.lists(st.integers(min_value=0, max_value=5),
                     min_size=4, max_size=28)

payload_sets = st.lists(st.binary(min_size=1, max_size=12),
                        min_size=6, max_size=6)


@pytest.mark.slow
@given(plan=plans, schedule=schedules, payloads=payload_sets,
       seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=25, deadline=None)
def test_storms_never_reuse_ivs_and_always_roundtrip(
    plan, schedule, payloads, seed
):
    injector = FaultInjector(plan, seed=seed)
    machine = build_machine(
        CcMode.ENABLED, enc_threads=4, dec_threads=2, faults=injector
    )
    runtime = PipeLLMRuntime(machine)
    runtime.hint_weight_chunk_size(LAYER)

    audit = ClusterIvAudit()  # raises on any (key, IV) repeat
    machine.cpu_endpoint.attach_audit(audit)
    machine.gpu.endpoint.attach_audit(audit)

    regions = [
        machine.host_memory.allocate(LAYER, f"layer.{i}", payload)
        for i, payload in enumerate(payloads)
    ]

    def app():
        for index in schedule:
            chunk = machine.host_memory.chunk_at(regions[index].addr)
            yield runtime.memcpy_h2d(chunk).complete

    machine.sim.process(app())
    machine.sim.run()

    assert audit.observed > 0
    # Forward-only resync: the receive counter may lag (phantom burns)
    # but must never overtake the transmit counter.
    assert (machine.gpu.endpoint.rx_iv.consumed
            <= machine.cpu_endpoint.tx_iv.consumed)
    for index in set(schedule):
        chunk = machine.host_memory.chunk_at(regions[index].addr)
        assert machine.gpu._contents[chunk.tag] == bytes(chunk.payload)
    # Every request went through exactly one commit path: validated
    # speculation or degraded in-order (which bypasses the validator).
    stats = runtime.stats()
    assert stats["swap_requests"] + stats["degraded_commits"] == len(schedule)
