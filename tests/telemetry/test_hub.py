"""TelemetryHub behaviour: gating, retention, lifecycle records."""

import math

import pytest

from repro.cc import CcMode, build_machine
from repro.core import PipeLLMConfig, PipeLLMRuntime
from repro.hw import MB
from repro.telemetry import (
    IvEvent,
    SpeculationEvent,
    TelemetryHub,
    TransferEvent,
    active_session,
    recording,
)

LAYER = 8 * MB


def make_runtime(**cfg):
    machine = build_machine(CcMode.ENABLED, enc_threads=4, dec_threads=2)
    runtime = PipeLLMRuntime(machine, PipeLLMConfig(**cfg) if cfg else None)
    return machine, runtime


def drive(machine, generator):
    machine.sim.process(generator)
    machine.run()
    assert machine.gpu.auth_failures == 0


def swap_loop(machine, runtime, iterations=6):
    region = machine.host_memory.allocate(LAYER, "layer.0", b"weights")
    runtime.hint_weight_chunk_size(LAYER)

    def app():
        for _ in range(iterations):
            handle = runtime.memcpy_h2d(machine.host_memory.chunk_at(region.addr))
            yield handle.complete
            yield machine.sim.timeout(1e-3)

    drive(machine, app())


class TestGating:
    def test_disabled_by_default(self):
        machine = build_machine(CcMode.ENABLED)
        assert not machine.telemetry.enabled
        assert not machine.sim.tracer.enabled

    def test_disabled_retains_nothing(self):
        machine, runtime = make_runtime()
        swap_loop(machine, runtime)
        hub = machine.telemetry
        assert hub.events == []
        assert hub.requests == []
        assert machine.sim.tracer.spans == []

    def test_counters_live_while_disabled(self):
        machine, runtime = make_runtime()
        swap_loop(machine, runtime)
        assert runtime.validator.requests > 0
        assert machine.metrics.counter("validator.hits").value == runtime.validator.hits
        assert machine.metrics.counter("pipeline.staged_total").value > 0

    def test_emit_noop_when_disabled(self):
        hub = TelemetryHub()
        hub.emit(TransferEvent(0.0, "h2d", 0, 1024))
        assert hub.events == []
        assert hub.begin_request("h2d", 0, 1024, 0.0) is None

    def test_enable_propagates_to_tracer(self):
        machine = build_machine(CcMode.ENABLED)
        machine.telemetry.enabled = True
        assert machine.sim.tracer.enabled
        machine.telemetry.disable()
        assert not machine.sim.tracer.enabled


class TestEventBus:
    def test_emit_and_filter(self):
        hub = TelemetryHub(enabled=True)
        hub.emit(TransferEvent(0.0, "h2d", 4096, 1024))
        hub.emit(SpeculationEvent(1.0, "stage", 4096, 1024, 7))
        assert len(hub.events) == 2
        assert [e.iv for e in hub.events_of(SpeculationEvent)] == [7]
        assert hub.events_of(IvEvent) == []

    def test_event_kind_and_args(self):
        event = SpeculationEvent(1.0, "stage", 4096, 1024, 7)
        assert event.kind == "speculation"
        args = event.args()
        assert args["action"] == "stage" and "time" not in args

    def test_subscriber_sees_events(self):
        hub = TelemetryHub(enabled=True)
        seen = []
        hub.subscribe(seen.append)
        event = TransferEvent(0.0, "h2d", 0, 1)
        hub.emit(event)
        assert seen == [event]

    def test_max_events_drops_and_counts(self):
        hub = TelemetryHub(enabled=True)
        hub.max_events = 2
        for i in range(5):
            hub.emit(TransferEvent(float(i), "h2d", 0, 1))
        assert len(hub.events) == 2
        assert hub.dropped_events == 3


class TestRequestRecords:
    def test_lifecycle_latencies(self):
        hub = TelemetryHub(enabled=True)
        record = hub.begin_request("h2d", 4096, LAYER, 1.0, tag="w")
        assert math.isnan(record.api_latency)
        hub.mark_api_done(record, 1.5)
        hub.mark_complete(record, 3.0)
        assert record.api_latency == pytest.approx(0.5)
        assert record.wire_latency == pytest.approx(2.0)
        snap = hub.metrics.snapshot()
        assert snap["telemetry.h2d_wire_s.count"] == 1.0
        assert snap["telemetry.transfer_bytes.count"] == 1.0

    def test_request_ids_increment(self):
        hub = TelemetryHub(enabled=True)
        a = hub.begin_request("h2d", 0, 1, 0.0)
        b = hub.begin_request("d2h", 0, 1, 0.0)
        assert (a.request_id, b.request_id) == (0, 1)

    def test_records_stitched_by_runtime(self):
        machine, runtime = make_runtime()
        machine.telemetry.enable()
        swap_loop(machine, runtime)
        hub = machine.telemetry
        assert len(hub.requests) == 6
        swaps = [r for r in hub.requests if r.kind == "swap"]
        assert swaps, "no swap records"
        for record in swaps:
            assert record.outcome in ("hit_now", "hit_future", "stale", "miss")
            assert record.strategy in ("staged", "ondemand", "inline")
            assert record.commit_iv >= 0
            assert not math.isnan(record.complete_time)
        d = swaps[0].as_dict()
        assert d["direction"] == "h2d" and d["size"] == LAYER

    def test_outcome_counts_agree_with_validator(self):
        machine, runtime = make_runtime()
        machine.telemetry.enable()
        swap_loop(machine, runtime, iterations=8)
        counts = machine.telemetry.outcome_counts()
        stats = runtime.stats()
        assert counts.get("hit_now", 0) == stats["hits"]
        assert counts.get("hit_future", 0) == stats["future_hits"]
        assert counts.get("stale", 0) == stats["stale"]
        assert counts.get("miss", 0) == stats["misses"]
        assert sum(counts.values()) == stats["swap_requests"]
        assert machine.telemetry.success_rate() == pytest.approx(stats["success_rate"])

    def test_legacy_counter_properties_still_served(self):
        machine, runtime = make_runtime()
        swap_loop(machine, runtime)
        stats = runtime.stats()
        assert stats["staged_total"] == machine.telemetry.metrics.counter(
            "pipeline.staged_total"
        ).value
        assert runtime.nops_sent == machine.metrics.counter("runtime.nops_sent").value


class TestRecordingSession:
    def test_registers_machines_built_inside(self):
        with recording() as session:
            machine = build_machine(CcMode.ENABLED)
        assert machine.telemetry in session.hubs
        assert machine.telemetry.enabled
        assert machine.telemetry.label == "machine-0"

    def test_inactive_outside_block(self):
        assert active_session() is None
        with recording():
            assert active_session() is not None
        assert active_session() is None
        machine = build_machine(CcMode.ENABLED)
        assert not machine.telemetry.enabled

    def test_max_events_applied_to_hubs(self):
        with recording(max_events_per_hub=3) as session:
            machine = build_machine(CcMode.ENABLED)
        assert machine.telemetry.max_events == 3
        assert session.max_events_per_hub == 3
