"""Exporter tests: Chrome trace validity, flat dumps, ASCII Gantt."""

import json

import pytest

from repro.cc import CcMode, build_machine
from repro.core import PipeLLMConfig, PipeLLMRuntime
from repro.hw import MB
from repro.telemetry import (
    ascii_gantt,
    canonical_lane,
    chrome_trace,
    flat_metrics,
    metrics_csv,
    recording,
)

LAYER = 8 * MB


def traced_run(iterations=6):
    """One PipeLLM swap loop recorded through the hub."""
    with recording() as session:
        machine = build_machine(CcMode.ENABLED, enc_threads=4, dec_threads=2)
        runtime = PipeLLMRuntime(machine, PipeLLMConfig())
        region = machine.host_memory.allocate(LAYER, "layer.0", b"weights")
        runtime.hint_weight_chunk_size(LAYER)

        def app():
            for _ in range(iterations):
                handle = runtime.memcpy_h2d(machine.host_memory.chunk_at(region.addr))
                yield handle.complete
                yield machine.gpu.compute(1e10, 1e7, layers=1)

        machine.sim.process(app())
        machine.run()
    assert machine.gpu.auth_failures == 0
    return session


class TestCanonicalLane:
    @pytest.mark.parametrize("raw,expected", [
        ("pcie.h2d.cc", "pcie"),
        ("pcie.d2h", "pcie"),
        ("enc[0]", "enc-engine"),
        ("dec[1]", "enc-engine"),
        ("gpu", "gpu-compute"),
        ("serving.vllm", "serving"),
        ("speculation", "speculation"),
        ("requests", "requests"),
    ])
    def test_mapping(self, raw, expected):
        assert canonical_lane(raw) == expected


class TestChromeTrace:
    def test_valid_json_with_required_lanes(self):
        session = traced_run()
        doc = chrome_trace(session.hubs)
        json.loads(json.dumps(doc))  # round-trips as strict JSON

        events = doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"
        spans = [e for e in events if e.get("ph") == "X"]
        cats = {e["cat"] for e in spans}
        for lane in ("pcie", "enc-engine", "gpu-compute", "speculation"):
            assert lane in cats, f"missing {lane} spans"
        # Timestamps are microseconds, non-negative, with durations.
        for span in spans:
            assert span["ts"] >= 0.0 and span["dur"] >= 0.0

    def test_process_and_thread_metadata(self):
        session = traced_run()
        doc = chrome_trace(session.hubs)
        meta = [e for e in doc["traceEvents"] if e.get("ph") == "M"]
        names = {e["name"] for e in meta}
        assert {"process_name", "thread_name", "thread_sort_index"} <= names

    def test_request_spans_carry_lifecycle(self):
        session = traced_run()
        doc = chrome_trace(session.hubs)
        requests = [e for e in doc["traceEvents"]
                    if e.get("ph") == "X" and e.get("cat") == "request"]
        assert requests
        swap = next(e for e in requests if e["args"]["kind"] == "swap")
        assert swap["args"]["outcome"] in ("hit_now", "hit_future", "stale", "miss")

    def test_instants_for_typed_events(self):
        session = traced_run()
        doc = chrome_trace(session.hubs)
        instants = [e for e in doc["traceEvents"] if e.get("ph") == "i"]
        kinds = {e["cat"] for e in instants}
        assert "speculation" in kinds and "transfer" in kinds

    def test_machine_summaries(self):
        session = traced_run()
        doc = chrome_trace(session.hubs)
        (summary,) = doc["otherData"]["machines"]
        assert summary["requests"] == 6
        assert summary["dropped_events"] == 0
        assert sum(summary["outcomes"].values()) > 0

    def test_outcomes_match_validator(self):
        session = traced_run(iterations=8)
        hub = session.hubs[0]
        doc = chrome_trace(session.hubs)
        (summary,) = doc["otherData"]["machines"]
        validator_total = int(hub.metrics.counter("validator.hits").value
                              + hub.metrics.counter("validator.future_hits").value
                              + hub.metrics.counter("validator.stale").value
                              + hub.metrics.counter("validator.misses").value)
        assert sum(summary["outcomes"].values()) == validator_total


class TestFlatDumps:
    def test_flat_metrics(self):
        session = traced_run()
        (dump,) = flat_metrics(session.hubs)
        assert dump["metrics"]["pipeline.staged_total"] > 0
        assert "telemetry.h2d_wire_s.p50" in dump["metrics"]
        assert "telemetry.transfer_bytes.bucket.overflow" in dump["metrics"]
        assert len(dump["requests_detail"]) == 6
        json.dumps(dump)  # serializable as-is

    def test_metrics_csv(self):
        session = traced_run()
        text = metrics_csv(session.hubs)
        lines = text.strip().splitlines()
        assert lines[0] == "machine,metric,value"
        assert any("requests.success_rate" in line for line in lines)
        assert any("validator.hits" in line for line in lines)


class TestAsciiGantt:
    def test_renders_per_hub(self):
        session = traced_run()
        text = ascii_gantt(session.hubs, width=40)
        assert "===" in text and "pcie" in text

    def test_lane_prefix_filter(self):
        session = traced_run()
        text = ascii_gantt(session.hubs, width=40, lane_prefix="pcie")
        assert "pcie" in text and "gpu" not in text

    def test_no_hubs(self):
        assert "no machines" in ascii_gantt([])


class TestEdgeCases:
    """Exporters over degenerate inputs: empty hubs, crashed-mid-span."""

    def _bare_hub(self, label="empty"):
        from repro.sim import Simulator
        from repro.telemetry.hub import TelemetryHub

        hub = TelemetryHub(Simulator(), label=label)
        hub.enabled = True
        return hub

    def test_chrome_trace_over_empty_run(self):
        """A hub that recorded nothing still exports a valid document
        with the reserved event lanes present (instants need a home
        thread even when no span ever used their lane)."""
        hub = self._bare_hub()
        doc = chrome_trace([hub])
        json.loads(json.dumps(doc))
        meta = [e for e in doc["traceEvents"] if e.get("ph") == "M"]
        lanes = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
        assert "requests" in lanes and "alerts" in lanes
        assert not [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        (summary,) = doc["otherData"]["machines"]
        assert summary == {
            "label": "empty", "spans": 0, "events": 0, "dropped_events": 0,
            "requests": 0, "outcomes": {}, "success_rate": 0.0,
        }

    def test_chrome_trace_over_no_hubs(self):
        doc = chrome_trace([])
        assert doc["traceEvents"] == [] and doc["otherData"]["machines"] == []

    def test_chrome_trace_skips_records_crashed_mid_span(self):
        """Requests still in flight when the run died (complete and
        api-done both nan) must be skipped, not exported as NaN JSON."""
        hub = self._bare_hub("crashed")
        hub.begin_request("h2d", addr=0, size=4096, time=0.5)  # never lands
        half = hub.begin_request("h2d", addr=1, size=4096, time=0.6)
        hub.mark_api_done(half, 0.7)  # API returned, wire never landed
        done = hub.begin_request("d2h", addr=2, size=4096, time=0.8)
        hub.mark_complete(done, 0.9)
        doc = chrome_trace([hub])
        text = json.dumps(doc)
        json.loads(text)
        assert "NaN" not in text  # json.dumps would emit bare NaN tokens
        spans = [e for e in doc["traceEvents"]
                 if e.get("ph") == "X" and e.get("cat") == "request"]
        # The in-flight record is dropped; the api-done one is clamped
        # to its API return; the landed one exports fully.
        assert [s["args"]["addr"] for s in spans] == [1, 2]

    def test_flat_and_csv_over_empty_run(self):
        hub = self._bare_hub()
        (dump,) = flat_metrics([hub])
        assert dump["requests_detail"] == []
        text = metrics_csv([hub])
        assert text.splitlines()[0] == "machine,metric,value"
