"""Golden-file schema test for the Chrome-trace exporter.

A hand-built, fully deterministic hub — one span per hardware lane,
one typed event of every kind (including the fault plane's injection
and recovery events), one completed swap request and one in-flight
control request — is exported and compared byte-for-byte against the
committed golden document.

The golden file pins the exporter's *external contract*: key sets per
event phase, lane → thread naming, microsecond timestamps, the
machine-summary block. Any intentional format change must regenerate
it (and thereby show up in review as a diff):

    PYTHONPATH=src python tests/telemetry/test_chrome_golden.py
"""

import json
from pathlib import Path

from repro.telemetry import (
    ClusterEvent,
    FaultEvent,
    InjectionEvent,
    IvEvent,
    RecoveryEvent,
    SpeculationEvent,
    TelemetryHub,
    TransferEvent,
    chrome_trace,
)

GOLDEN = Path(__file__).parent / "golden" / "chrome_trace.json"

MB = 1 << 20


def golden_hub() -> TelemetryHub:
    """A deterministic hub exercising every exporter surface."""
    hub = TelemetryHub(enabled=True, label="golden-machine")

    tracer = hub.tracer
    tracer.record("speculation", "staged layer.0", 0.0002, 0.0010)
    tracer.record("enc[0]", "aes-gcm", 0.0005, 0.0009)
    tracer.record("pcie.h2d.cc", "swap layer.0", 0.0010, 0.0018)
    tracer.record("gpu", "decode", 0.0020, 0.0060)

    hub.emit(TransferEvent(0.0010, "h2d", 4096, MB, tag="layer.0", request_id=0))
    hub.emit(SpeculationEvent(0.0011, "validate", addr=4096, size=MB, iv=7,
                              reason="hit_now", request_id=0))
    hub.emit(IvEvent(0.0012, "cpu-tx", iv=7, purpose="staged", request_id=0))
    hub.emit(FaultEvent(0.0013, addr=4096, size=MB, access="write",
                        owners="runtime"))
    hub.emit(InjectionEvent(0.0014, "crypto", "tag-corrupt", detail="swap"))
    hub.emit(RecoveryEvent(0.0015, "auth-recover", attempts=2,
                           detail="re-encrypt", request_id=0))
    hub.emit(ClusterEvent(0.0016, "dispatch", tenant="tenant-0", replica=1,
                          request_id=3, detail="least-loaded"))

    swap = hub.begin_request("h2d", 4096, MB, 0.0010, tag="layer.0")
    swap.kind = "swap"
    swap.swap_class = "weights"
    swap.outcome = "hit_now"
    swap.strategy = "staged"
    swap.staged_iv = 7
    swap.commit_iv = 7
    hub.mark_api_done(swap, 0.0011)
    hub.mark_complete(swap, 0.0018)

    control = hub.begin_request("d2h", 8192, 2048, 0.0020, tag="tok")
    control.kind = "control"
    control.strategy = "inline"
    hub.mark_api_done(control, 0.0021)  # never completes: ends at api_done

    return hub


def export() -> dict:
    # Round-trip through the JSON codec so the comparison sees exactly
    # what a consumer would parse.
    return json.loads(json.dumps(chrome_trace([golden_hub()])))


class TestGoldenDocument:
    def test_matches_committed_golden_byte_for_byte(self):
        assert GOLDEN.exists(), (
            f"golden file missing; regenerate with "
            f"PYTHONPATH=src python {Path(__file__).relative_to(Path.cwd())}"
        )
        golden = json.loads(GOLDEN.read_text())
        assert export() == golden, (
            "chrome_trace output drifted from the committed golden file; "
            "if the change is intentional, regenerate with "
            "PYTHONPATH=src python tests/telemetry/test_chrome_golden.py"
        )


class TestSchema:
    """Structural assertions, so a failure names the broken contract."""

    def test_top_level_shape(self):
        doc = export()
        assert sorted(doc) == ["displayTimeUnit", "otherData", "traceEvents"]
        assert doc["displayTimeUnit"] == "ms"

    def test_key_sets_per_phase(self):
        doc = export()
        by_phase = {}
        for event in doc["traceEvents"]:
            by_phase.setdefault(event["ph"], set()).add(tuple(sorted(event)))
        assert by_phase["M"] == {("args", "name", "ph", "pid", "tid")}
        assert by_phase["X"] == {
            ("args", "cat", "dur", "name", "ph", "pid", "tid", "ts")
        }
        assert by_phase["i"] == {
            ("args", "cat", "name", "ph", "pid", "s", "tid", "ts")
        }

    def test_every_event_kind_gets_a_lane(self):
        doc = export()
        thread_names = {
            e["args"]["name"] for e in doc["traceEvents"]
            if e.get("ph") == "M" and e["name"] == "thread_name"
        }
        for lane in ("requests", "transfers", "speculation", "iv-stream",
                     "faults", "injected-faults", "recovery", "cluster"):
            assert lane in thread_names, f"missing thread for {lane} events"

    def test_instants_cover_every_event_type(self):
        doc = export()
        cats = {e["cat"] for e in doc["traceEvents"] if e.get("ph") == "i"}
        assert cats == {"transfer", "speculation", "iv", "fault",
                        "injection", "recovery", "cluster"}

    def test_machine_summary(self):
        doc = export()
        (summary,) = doc["otherData"]["machines"]
        assert summary == {
            "label": "golden-machine",
            "spans": 4,
            "events": 7,
            "dropped_events": 0,
            "requests": 2,
            "outcomes": {"hit_now": 1},
            "success_rate": 1.0,
        }

    def test_timestamps_are_microseconds(self):
        doc = export()
        swap_span = next(
            e for e in doc["traceEvents"]
            if e.get("cat") == "request" and e["args"]["kind"] == "swap"
        )
        assert swap_span["ts"] == 0.0010 * 1e6
        assert swap_span["dur"] == (0.0018 - 0.0010) * 1e6


if __name__ == "__main__":
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN.write_text(json.dumps(export(), indent=2, sort_keys=True) + "\n")
    print(f"regenerated {GOLDEN}")
