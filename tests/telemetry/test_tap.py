"""EventTap: bounded subscriber buffers with drop-oldest backpressure."""

import pytest

from repro.telemetry import EventTap, TelemetryHub, TransferEvent


def make_hub():
    hub = TelemetryHub(enabled=True)
    hub.max_events = 0  # hub retains nothing; taps see the live stream
    return hub


def event(i):
    return TransferEvent(time=float(i), direction="h2d", addr=i, size=64)


class TestBackpressure:
    def test_drop_oldest_keeps_newest(self):
        hub = make_hub()
        tap = hub.tap(max_events=4)
        for i in range(10):
            hub.emit(event(i))
        assert tap.seen == 10
        assert tap.dropped == 6
        assert len(tap) == 4
        assert [e.addr for e in tap] == [6, 7, 8, 9]

    def test_dropped_counter_lands_in_hub_metrics(self):
        hub = make_hub()
        hub.tap(max_events=2)
        for i in range(5):
            hub.emit(event(i))
        assert hub.metrics.counters["telemetry.tap.dropped_events"].value == 3

    def test_no_drops_under_capacity(self):
        hub = make_hub()
        tap = hub.tap(max_events=8)
        for i in range(5):
            hub.emit(event(i))
        assert tap.dropped == 0
        assert "telemetry.tap.dropped_events" not in hub.metrics.counters

    def test_drain_empties_buffer(self):
        hub = make_hub()
        tap = hub.tap(max_events=4)
        for i in range(3):
            hub.emit(event(i))
        drained = tap.drain()
        assert [e.addr for e in drained] == [0, 1, 2]
        assert len(tap) == 0

    def test_independent_taps(self):
        hub = make_hub()
        small = hub.tap(max_events=1)
        large = hub.tap(max_events=16)
        for i in range(4):
            hub.emit(event(i))
        assert [e.addr for e in small] == [3]
        assert [e.addr for e in large] == [0, 1, 2, 3]
        assert small.dropped == 3 and large.dropped == 0

    def test_rejects_nonpositive_capacity(self):
        hub = make_hub()
        with pytest.raises(ValueError):
            hub.tap(max_events=0)

    def test_disabled_hub_feeds_no_taps(self):
        hub = make_hub()
        tap = hub.tap(max_events=4)
        hub.disable()
        hub.emit(event(0))
        assert tap.seen == 0 and len(tap) == 0
