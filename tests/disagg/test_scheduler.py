"""Scheduler end-to-end: routing, hold-until-KV, resume vs replay."""

from repro.bench import STRESS_TRACE
from repro.cluster.routing import AffinityPolicy
from repro.core import DisaggConfig
from repro.disagg import DisaggCluster, run_disagg


class TestDisaggServing:
    def test_completes_every_request_with_migrations(self):
        result = run_disagg(DisaggConfig(), rate=4.0, duration=2.0)
        assert result.offered > 0
        assert result.completed + result.shed == result.offered
        assert result.unfinished == 0
        assert result.migrations_completed >= result.completed
        assert result.migration_chunks > 0
        assert result.migration_hit_rate > 0.5
        assert result.iv_observed > 0

    def test_first_token_lands_at_prefill_completion(self):
        # DistServe semantics: TTFT is prefill completion; migration
        # gates only the second token, so every TTFT must be at least
        # the prefill cost but far below prefill + full migration +
        # queueing at low load.
        result = run_disagg(DisaggConfig(), rate=2.0, duration=2.0)
        assert result.ttfts
        assert all(t > 0 for t in result.ttfts)
        assert result.p50_ttft < 0.05

    def test_monolithic_baseline_never_migrates(self):
        config = DisaggConfig(prefill_workers=0, decode_workers=3, system="cc")
        result = run_disagg(config, rate=4.0, duration=2.0)
        assert result.completed + result.shed == result.offered
        assert result.unfinished == 0
        assert result.migrations == 0
        assert result.iv_observed == 0

    def test_native_migrates_in_the_clear(self):
        result = run_disagg(
            DisaggConfig(system="native"), rate=4.0, duration=2.0
        )
        assert result.completed + result.shed == result.offered
        assert result.migration_chunks > 0
        assert result.iv_observed == 0


class TestFailover:
    def test_decode_crash_mid_migration_resumes_from_retained_kv(self):
        # Long prompts + short outputs keep requests in the
        # migrating/holding window when the crash lands, and the
        # prefill worker survives — so failover must re-ship retained
        # copies, not recompute. Crash the worker the hot tenant's
        # rendezvous hash actually targets.
        target = max(
            range(3), key=lambda i: AffinityPolicy._weight("tenant-0", i)
        )
        config = DisaggConfig(
            system="cc", fail_at=1.0, fail_kind="decode", fail_index=target,
            recover_after=1.0,
        )
        result = run_disagg(
            config, rate=18.0, duration=2.0, tenants=1, trace=STRESS_TRACE
        )
        assert result.crashes == 1
        assert result.failovers >= 1
        assert result.resumes >= 1
        assert result.completed + result.shed == result.offered
        assert result.unfinished == 0

    def test_prefill_crash_replays_from_scratch(self):
        # The retained copy dies with its incarnation: orphans of a
        # prefill crash can only replay. A single saturated prefill
        # worker (long prompts at high rate) guarantees the crash
        # catches work in flight.
        config = DisaggConfig(
            prefill_workers=1, system="cc",
            fail_at=0.5, fail_kind="prefill", fail_index=0,
            recover_after=1.0,
        )
        result = run_disagg(
            config, rate=30.0, duration=1.5, tenants=2, trace=STRESS_TRACE
        )
        assert result.crashes == 1
        assert result.replays >= 1
        assert result.resumes == 0
        assert result.completed + result.shed == result.offered
        assert result.unfinished == 0

    def test_unrecovered_crash_still_drains(self):
        config = DisaggConfig(
            system="pipellm", fail_at=1.0, fail_kind="decode", fail_index=1,
            recover_after=0.0,
        )
        result = run_disagg(config, rate=8.0, duration=2.0)
        assert result.completed + result.shed == result.offered
        assert result.unfinished == 0


class TestDeterminism:
    def test_same_config_replays_identically(self):
        config = DisaggConfig(seed=9)
        first = run_disagg(config, rate=3.0, duration=1.5).as_dict()
        second = run_disagg(DisaggConfig(seed=9), rate=3.0, duration=1.5).as_dict()
        assert first == second

    def test_seed_changes_the_run(self):
        first = run_disagg(DisaggConfig(seed=9), rate=3.0, duration=1.5)
        second = run_disagg(DisaggConfig(seed=10), rate=3.0, duration=1.5)
        assert first.as_dict() != second.as_dict()


class TestHardwarePacks:
    def test_pack_selects_the_calibration(self):
        slow = DisaggCluster(DisaggConfig(hw_pack="cpu-tee"))
        fast = DisaggCluster(DisaggConfig(hw_pack="b300-cc"))
        default = DisaggCluster(DisaggConfig())
        assert slow.params.gpu.flops < default.params.gpu.flops
        assert fast.params.gpu.flops > default.params.gpu.flops
        assert (
            fast.fabric.chunk_seconds(True) != default.fabric.chunk_seconds(True)
        )
