"""Migration fabric units: speculation, timing, round-trips, re-keying."""

import pytest

from repro.core import DisaggConfig
from repro.disagg import (
    MIGRATION_CHUNK_BYTES,
    DisaggCluster,
    DisaggRequest,
    MigrationSpeculator,
)
from repro.disagg.migration import chunk_payload


def make_cluster(system="pipellm", **kwargs):
    return DisaggCluster(DisaggConfig(system=system, **kwargs))


def migrate_once(cluster, rid=7, kv_bytes=3 * MIGRATION_CHUNK_BYTES,
                 src=None, dst=None):
    """Drive one migration through the fabric and return its record."""
    creq = DisaggRequest(
        rid=rid, tenant="tenant-0", request=None, submit_time=0.0,
        kv_bytes=kv_bytes,
    )
    src = src or cluster.prefill_pool[0]
    dst = dst or cluster.decode_pool[0]
    out = {}

    def driver():
        out["record"] = yield from cluster.fabric.migrate(creq, src, dst)

    cluster.sim.process(driver())
    cluster.sim.run()
    return out["record"]


class TestSpeculator:
    def test_learns_the_schedule_after_one_cold_miss(self):
        spec = MigrationSpeculator(clock=lambda: 0.0)
        outcomes = [
            spec.lookup("p0.e1", 2, MIGRATION_CHUNK_BYTES) for _ in range(20)
        ]
        assert not outcomes[0]  # nothing observed yet
        assert all(outcomes[2:])  # constant (dst, size) train: all hits
        assert spec.hit_rate > 0.85

    def test_destination_change_is_a_miss(self):
        spec = MigrationSpeculator(clock=lambda: 0.0)
        for _ in range(10):
            spec.lookup("p0.e1", 0, MIGRATION_CHUNK_BYTES)
        assert not spec.lookup("p0.e1", 1, MIGRATION_CHUNK_BYTES)

    def test_sources_learn_independently(self):
        spec = MigrationSpeculator(clock=lambda: 0.0)
        for _ in range(5):
            spec.lookup("p0.e1", 0, MIGRATION_CHUNK_BYTES)
        # A fresh source starts cold regardless of p0's training.
        assert not spec.lookup("p1.e1", 0, MIGRATION_CHUNK_BYTES)


class TestChunkPayload:
    def test_deterministic_and_distinct(self):
        assert chunk_payload(3, 0) == chunk_payload(3, 0)
        assert chunk_payload(3, 0) != chunk_payload(3, 1)
        assert chunk_payload(3, 0) != chunk_payload(4, 0)


class TestChunkTiming:
    def test_native_beats_staged_beats_serialized(self):
        native = make_cluster("native").fabric
        cc = make_cluster("cc").fabric
        pipellm = make_cluster("pipellm").fabric
        clear = native.chunk_seconds(staged=False)
        staged = pipellm.chunk_seconds(staged=True)
        serialized = cc.chunk_seconds(staged=False)
        assert clear < staged < serialized
        # A pipellm miss pays exactly the serialized cost.
        assert pipellm.chunk_seconds(staged=False) == serialized


class TestMigrate:
    def test_delivers_every_chunk_bit_exact_under_audit(self):
        cluster = make_cluster("pipellm")
        record = migrate_once(cluster, kv_bytes=5 * MIGRATION_CHUNK_BYTES)
        assert record.complete
        assert record.delivered == record.chunks == 5
        # Both endpoints feed the fleet audit: one IV per side per chunk.
        assert cluster.audit.observed == 2 * record.chunks

    def test_native_migrations_consume_no_ivs(self):
        cluster = make_cluster("native")
        record = migrate_once(cluster)
        assert record.complete
        assert cluster.audit.observed == 0

    def test_partial_chunk_rounds_up(self):
        cluster = make_cluster("cc")
        record = migrate_once(cluster, kv_bytes=MIGRATION_CHUNK_BYTES + 1)
        assert record.chunks == 2 and record.complete

    def test_destination_crash_aborts_with_status(self):
        cluster = make_cluster("cc")
        dst = cluster.decode_pool[0]

        def killer():
            yield cluster.sim.timeout(cluster.fabric.chunk_seconds(False) * 3)
            dst.crash()

        cluster.sim.process(killer())
        record = migrate_once(cluster, kv_bytes=64 * MIGRATION_CHUNK_BYTES,
                              dst=dst)
        assert record.status == "dst-crashed"
        assert not record.complete
        assert record.delivered < record.chunks

    def test_recovered_incarnation_gets_a_fresh_link(self):
        cluster = make_cluster("cc")
        src, dst = cluster.prefill_pool[0], cluster.decode_pool[0]
        first = cluster.fabric.link(src, dst)
        dst.crash()
        dst.recover()
        second = cluster.fabric.link(src, dst)
        assert first is not second
        assert first.label != second.label
        assert cluster.fabric.stats()["links"] == 2


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(system="tdx"),
        dict(prefill_workers=-1),
        dict(decode_workers=0),
        dict(decode_policy="random"),
        dict(fail_kind="gateway"),
        dict(fail_at=1.0, fail_kind="decode", fail_index=3),
        dict(fail_at=1.0, fail_kind="prefill", fail_index=1),
        dict(recover_after=-0.5),
    ])
    def test_rejects_bad_configs(self, kwargs):
        with pytest.raises(ValueError):
            DisaggConfig(**kwargs)
