"""Property: migrated KV survives any crash/resume schedule, audited.

Hypothesis drives random single-worker crashes — either pool, any
index, any time, with or without recovery — through the disaggregated
fleet while a live :class:`~repro.cluster.tenant.ClusterIvAudit`
watches every migration endpoint ever derived. Whatever the schedule:

* **every migrated KV chunk round-trips bit-exact** — the fabric
  derives each chunk's expected plaintext independently on the
  receive side and asserts equality after AES-GCM decryption, so any
  corruption (including a stale retained copy resumed onto a new
  incarnation) fails the example loudly;
* **no (key, IV) pair is ever reused** — resumed migrations run over
  freshly keyed per-incarnation links; the audit raises on any
  repeat, across the whole fleet, for the life of the run;
* **the ledger closes** — every admitted request ends completed or
  shed; nothing is silently dropped by a crash.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DisaggConfig
from repro.disagg import DisaggCluster


@pytest.mark.slow
@given(
    fail_at=st.floats(min_value=0.1, max_value=1.6, allow_nan=False),
    fail_kind=st.sampled_from(["prefill", "decode"]),
    fail_index=st.integers(min_value=0, max_value=1),
    recover_after=st.one_of(
        st.just(0.0), st.floats(min_value=0.2, max_value=1.5, allow_nan=False)
    ),
    policy=st.sampled_from(["round-robin", "least-loaded", "affinity"]),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=10, deadline=None)
def test_crash_schedules_round_trip_bit_exact_under_audit(
    fail_at, fail_kind, fail_index, recover_after, policy, seed
):
    config = DisaggConfig(
        prefill_workers=2, decode_workers=3, system="pipellm",
        decode_policy=policy, fail_at=fail_at, fail_kind=fail_kind,
        fail_index=fail_index, recover_after=recover_after, seed=seed,
    )
    cluster = DisaggCluster(config)
    result = cluster.run(cluster.workload(8.0, 1.5, tenants=2))
    # Bit-exactness is asserted chunk by chunk inside the fabric, and
    # the live audit raises on any IV reuse — reaching here means both
    # held. The ledger must close on top of that.
    assert result.completed + result.shed == result.offered
    assert result.unfinished == 0
    assert result.migrations_completed >= 1
    assert result.iv_observed > 0
    assert cluster.audit.observed == result.iv_observed
