"""Crash/failover tests, including the crypto invariants the issue
pins down: strictly monotone per-key IVs across a crash +
re-handshake, and rejection of replayed pre-crash ciphertext on the
post-failover session."""

import pytest

from repro.cluster import Cluster, TenantChannel
from repro.core import ClusterConfig
from repro.crypto import AuthenticationError


def failover_run(recover_after=2.0, rate=6.0, duration=8.0):
    config = ClusterConfig(
        replicas=2, policy="least-loaded",
        fail_at=2.0, fail_replica=0, recover_after=recover_after,
    )
    cluster = Cluster(config)
    result = cluster.run(cluster.workload(rate=rate, duration=duration,
                                          tenants=4))
    return cluster, result


class TestFailover:
    def test_crash_migrates_in_flight_requests(self):
        cluster, result = failover_run()
        assert result.crashes == 1
        assert result.failovers > 0
        assert result.unfinished == 0
        assert result.completed + result.shed == result.offered
        # A failed-over request carries its full replica history.
        moved = [
            c for c in cluster.gateway.completed
            if len(c.replica_history) > 1
        ]
        assert moved
        assert all(c.attempts > 1 for c in moved)

    def test_zero_tag_failures_across_migration(self):
        _, result = failover_run()
        assert result.auth_failures == 0

    def test_recovered_replica_serves_again(self):
        cluster, result = failover_run(recover_after=1.0, duration=10.0)
        replica = cluster.replicas[0]
        assert replica.alive
        assert replica.epoch == 2
        # The new incarnation actually took traffic after rejoining.
        assert replica.completed > 0 or replica.outstanding == 0

    def test_replica_stays_down_without_recovery(self):
        cluster, result = failover_run(recover_after=0.0)
        assert not cluster.replicas[0].alive
        assert result.unfinished == 0

    def test_epoch_keys_all_distinct(self):
        cluster, result = failover_run()
        # Every (tenant, replica, epoch) channel derived its own key:
        # lanes = 2 directions per channel, never fewer.
        channels = cluster.gateway._channels
        keys = {channel.key for channel in channels.values()}
        assert len(keys) == len(channels)
        assert result.iv_lanes == 2 * len(channels)

    def test_post_crash_handshake_is_fresh(self):
        cluster, _ = failover_run(recover_after=1.0, duration=10.0)
        by_epoch = {}
        for (tenant, replica_id, epoch), channel in cluster.gateway._channels.items():
            if replica_id == 0:
                by_epoch.setdefault(epoch, []).append(channel)
        if len(by_epoch) > 1:  # same replica, pre- and post-crash epochs
            keys_e1 = {c.key for c in by_epoch[1]}
            keys_e2 = {c.key for c in by_epoch[2]}
            assert not keys_e1 & keys_e2


class TestFailoverCryptoInvariants:
    def test_iv_monotone_per_key_across_crash(self):
        """The cluster-wide audit saw every tenant-session IV of a
        crash/recover run and none ever repeated or regressed."""
        cluster, result = failover_run()
        assert result.failovers > 0  # the invariant was actually exercised
        assert result.iv_observed > 0
        audit = cluster.audit
        # The audit raises IvReuseError inline; reaching here means
        # every lane stayed strictly monotone. Cross-check the ledger.
        assert audit.observed >= 2 * result.completed
        assert all(iv >= 0 for iv in audit._last.values())

    def test_replayed_pre_crash_ciphertext_rejected(self):
        """Ciphertext captured before a crash must not authenticate on
        the re-handshaken session (fresh key ⇒ GCM tag mismatch)."""
        pre_crash = TenantChannel("tenant-0", 0, 1)
        captured = pre_crash.send_request(b"pre-crash prompt")
        assert pre_crash.recv_request(captured) == b"pre-crash prompt"

        post_crash = TenantChannel("tenant-0", 0, 2)
        assert post_crash.key != pre_crash.key
        with pytest.raises(AuthenticationError):
            post_crash.recv_request(captured)

    def test_replay_into_live_failover_session(self):
        """Same attack inside a real cluster run: capture the first
        request ciphertext of a pre-crash session and replay it into
        the corresponding post-recovery session."""
        cluster, _ = failover_run(recover_after=1.0, duration=10.0)
        channels = cluster.gateway._channels
        pre = {t: c for (t, rid, e), c in channels.items() if rid == 0 and e == 1}
        post = {t: c for (t, rid, e), c in channels.items() if rid == 0 and e == 2}
        shared = set(pre) & set(post)
        if not shared:
            pytest.skip("no tenant used replica 0 in both epochs this seed")
        tenant = sorted(shared)[0]
        captured = pre[tenant].send_request(b"captured!")
        with pytest.raises(AuthenticationError):
            post[tenant].recv_request(captured)
