"""Routing policy unit tests (stub replicas, no simulator)."""

import pytest

from repro.cluster import (
    AffinityPolicy,
    LeastLoadedPolicy,
    RoundRobinPolicy,
    make_policy,
)


class StubReplica:
    def __init__(self, replica_id, outstanding=0, alive=True):
        self.replica_id = replica_id
        self.outstanding = outstanding
        self.alive = alive


class TestRoundRobin:
    def test_cycles_over_replicas(self):
        policy = RoundRobinPolicy()
        fleet = [StubReplica(i) for i in range(3)]
        picks = [policy.choose("t", fleet).replica_id for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_empty_fleet(self):
        assert RoundRobinPolicy().choose("t", []) is None

    def test_survivors_keep_rotating(self):
        policy = RoundRobinPolicy()
        fleet = [StubReplica(0), StubReplica(2)]  # replica 1 died
        picks = [policy.choose("t", fleet).replica_id for _ in range(4)]
        assert picks == [0, 2, 0, 2]


class TestLeastLoaded:
    def test_picks_minimum_outstanding(self):
        policy = LeastLoadedPolicy()
        fleet = [StubReplica(0, 5), StubReplica(1, 2), StubReplica(2, 7)]
        assert policy.choose("t", fleet).replica_id == 1

    def test_tie_breaks_by_id(self):
        policy = LeastLoadedPolicy()
        fleet = [StubReplica(2, 3), StubReplica(0, 3)]
        assert policy.choose("t", fleet).replica_id == 0


class TestAffinity:
    def test_deterministic_per_tenant(self):
        policy = AffinityPolicy()
        fleet = [StubReplica(i) for i in range(4)]
        first = policy.choose("tenant-a", fleet).replica_id
        for _ in range(5):
            assert policy.choose("tenant-a", fleet).replica_id == first

    def test_tenants_spread_over_fleet(self):
        policy = AffinityPolicy()
        fleet = [StubReplica(i) for i in range(4)]
        homes = {
            policy.choose(f"tenant-{i}", fleet).replica_id for i in range(32)
        }
        assert len(homes) >= 3  # rendezvous hashing spreads tenants

    def test_minimal_remap_on_crash(self):
        policy = AffinityPolicy()
        fleet = [StubReplica(i) for i in range(4)]
        before = {
            t: policy.choose(t, fleet).replica_id
            for t in (f"tenant-{i}" for i in range(16))
        }
        dead = before["tenant-0"]
        survivors = [r for r in fleet if r.replica_id != dead]
        moved = [
            t for t, home in before.items()
            if home != dead and policy.choose(t, survivors).replica_id != home
        ]
        assert moved == []  # only the dead replica's tenants re-map

    def test_overload_falls_back_to_least_loaded(self):
        policy = AffinityPolicy()
        fleet = [StubReplica(i) for i in range(3)]
        preferred = policy.choose("tenant-x", fleet).replica_id
        for replica in fleet:
            if replica.replica_id == preferred:
                replica.outstanding = policy.overload_slack + 1
        fallback = policy.choose("tenant-x", fleet)
        assert fallback.replica_id != preferred
        assert fallback.outstanding == 0

    def test_crashed_preferred_replica_is_skipped(self):
        # Rendezvous reassignment must happen the moment the preferred
        # replica dies — not only once some caller remembers to filter
        # the fleet. A stale (unfiltered) fleet list must never keep
        # steering a tenant at a dead replica until recovery.
        policy = AffinityPolicy()
        fleet = [StubReplica(i) for i in range(4)]
        preferred = policy.choose("tenant-a", fleet).replica_id
        for replica in fleet:
            if replica.replica_id == preferred:
                replica.alive = False
        rerouted = policy.choose("tenant-a", fleet)
        assert rerouted is not None and rerouted.alive
        assert rerouted.replica_id != preferred
        # The re-map is the same one a pre-filtered survivor set yields,
        # so per-tenant homes stay consistent across call sites.
        survivors = [r for r in fleet if r.alive]
        assert rerouted.replica_id == policy.choose("tenant-a", survivors).replica_id

    def test_dead_replica_never_anchors_overload_fallback(self):
        # A crashed replica drains to zero outstanding, so with it left
        # in the fleet list it both drags the overload floor down and
        # "wins" the least-loaded fallback — steering overflow traffic
        # at a corpse.
        policy = AffinityPolicy()
        fleet = [StubReplica(0, outstanding=0, alive=False)] + [
            StubReplica(i, outstanding=policy.overload_slack + 2)
            for i in range(1, 4)
        ]
        chosen = policy.choose("tenant-b", fleet)
        assert chosen is not None and chosen.alive

    def test_all_dead_fleet_returns_none(self):
        policy = AffinityPolicy()
        fleet = [StubReplica(i, alive=False) for i in range(3)]
        assert policy.choose("tenant-c", fleet) is None


class TestLivenessFiltering:
    def test_round_robin_skips_dead(self):
        policy = RoundRobinPolicy()
        fleet = [StubReplica(0), StubReplica(1, alive=False), StubReplica(2)]
        picks = [policy.choose("t", fleet).replica_id for _ in range(4)]
        assert picks == [0, 2, 0, 2]

    def test_least_loaded_skips_dead(self):
        policy = LeastLoadedPolicy()
        fleet = [StubReplica(0, 0, alive=False), StubReplica(1, 3), StubReplica(2, 1)]
        assert policy.choose("t", fleet).replica_id == 2


class TestRegistry:
    def test_make_policy(self):
        assert isinstance(make_policy("round-robin"), RoundRobinPolicy)
        assert isinstance(make_policy("least-loaded"), LeastLoadedPolicy)
        assert isinstance(make_policy("affinity"), AffinityPolicy)

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown routing policy"):
            make_policy("random")
