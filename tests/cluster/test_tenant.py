"""Per-tenant channel and IV-audit unit tests."""

import pytest

from repro.cluster import ClusterIvAudit, IvReuseError, TenantChannel
from repro.crypto import AuthenticationError


class TestTenantChannel:
    def test_request_response_roundtrip(self):
        channel = TenantChannel("tenant-0", 0, 1)
        message = channel.send_request(b"prompt-payload!!")
        assert message.ciphertext != b"prompt-payload!!"
        assert channel.recv_request(message) == b"prompt-payload!!"
        response = channel.send_response(b"token-payload!!!")
        assert channel.recv_response(response) == b"token-payload!!!"

    def test_keys_differ_per_tenant_replica_epoch(self):
        base = TenantChannel("tenant-0", 0, 1)
        assert TenantChannel("tenant-1", 0, 1).key != base.key
        assert TenantChannel("tenant-0", 1, 1).key != base.key
        assert TenantChannel("tenant-0", 0, 2).key != base.key

    def test_tenant_streams_independent_of_each_other(self):
        a = TenantChannel("tenant-a", 0, 1)
        b = TenantChannel("tenant-b", 0, 1)
        msg_a = a.send_request(b"a" * 16)
        # tenant-b's replica endpoint must reject tenant-a's traffic.
        with pytest.raises(AuthenticationError):
            b.recv_request(msg_a)

    def test_reordered_request_rejected(self):
        channel = TenantChannel("tenant-0", 0, 1)
        channel.send_request(b"first")
        second = channel.send_request(b"second")
        with pytest.raises(AuthenticationError):
            channel.recv_request(second)


class TestClusterIvAudit:
    def test_monotone_stream_accepted(self):
        audit = ClusterIvAudit()
        for iv in (1, 2, 5, 9):
            audit.observe(b"k" * 16, "tenant->replica", iv)
        assert audit.observed == 4
        assert audit.keys_seen() == 1

    def test_reuse_trips(self):
        audit = ClusterIvAudit()
        audit.observe(b"k" * 16, "tenant->replica", 7)
        with pytest.raises(IvReuseError):
            audit.observe(b"k" * 16, "tenant->replica", 7)

    def test_regression_trips(self):
        audit = ClusterIvAudit()
        audit.observe(b"k" * 16, "tenant->replica", 7)
        with pytest.raises(IvReuseError):
            audit.observe(b"k" * 16, "tenant->replica", 3)

    def test_lanes_are_per_key_and_direction(self):
        audit = ClusterIvAudit()
        audit.observe(b"k" * 16, "tenant->replica", 7)
        # Same IV is fine on the other direction and under another key.
        audit.observe(b"k" * 16, "replica->tenant", 7)
        audit.observe(b"j" * 16, "tenant->replica", 7)
        assert audit.keys_seen() == 3

    def test_channel_reports_to_audit(self):
        audit = ClusterIvAudit()
        channel = TenantChannel("tenant-0", 0, 1, audit=audit)
        channel.send_request(b"one")
        channel.send_request(b"two")
        channel.send_response(b"three")
        assert audit.observed == 3
        assert audit.keys_seen() == 2  # two directions of one key
