"""End-to-end cluster runs: completion, shedding, policies, metrics."""

import pytest

from repro.cluster import CLUSTER_TRACE, Cluster, run_cluster
from repro.core import ClusterConfig


def small_run(config, rate=3.0, duration=6.0, tenants=3):
    cluster = Cluster(config)
    result = cluster.run(cluster.workload(rate=rate, duration=duration,
                                          tenants=tenants))
    return cluster, result


class TestClusterRuns:
    def test_all_requests_resolve(self):
        _, result = small_run(ClusterConfig(replicas=2))
        assert result.offered > 0
        assert result.completed + result.shed == result.offered
        assert result.unfinished == 0
        assert result.auth_failures == 0

    def test_single_replica_fleet(self):
        _, result = small_run(ClusterConfig(replicas=1, policy="round-robin"))
        assert result.completed == result.offered
        assert result.utilization[0] > 0

    def test_latencies_and_throughput(self):
        _, result = small_run(ClusterConfig(replicas=2))
        assert len(result.latencies) == result.completed
        assert 0 < result.p50_latency <= result.p99_latency
        assert result.throughput > 0
        assert 0 < result.duration < 60

    def test_every_request_encrypted_roundtrip(self):
        # One request IV + one response IV per completion, more with
        # failover retries — never fewer.
        _, result = small_run(ClusterConfig(replicas=2))
        assert result.iv_observed >= 2 * result.completed
        assert result.iv_lanes >= 2  # at least one key, two directions

    def test_deterministic_given_seed(self):
        config = ClusterConfig(replicas=2, seed=11)
        _, first = small_run(config)
        _, second = small_run(ClusterConfig(replicas=2, seed=11))
        assert first.as_dict() == second.as_dict()

    def test_seed_changes_workload(self):
        _, first = small_run(ClusterConfig(replicas=2, seed=1))
        _, second = small_run(ClusterConfig(replicas=2, seed=2))
        assert first.as_dict() != second.as_dict()

    def test_native_fleet_runs_without_crypto(self):
        _, result = small_run(ClusterConfig(replicas=2, system="native"))
        assert result.completed == result.offered
        # Tenant-gateway sessions still run even when replicas skip CC.
        assert result.iv_observed >= 2 * result.completed


class TestAdmissionControl:
    def test_capacity_shedding(self):
        config = ClusterConfig(
            replicas=1, queue_capacity=2, max_outstanding=1,
            admission_timeout=30.0,
        )
        cluster, result = small_run(config, rate=40.0, duration=1.0)
        assert result.shed > 0
        assert result.completed + result.shed == result.offered
        shed_capacity = cluster.gateway.metrics.counter(
            "cluster.gateway.shed.capacity"
        ).value
        assert shed_capacity > 0

    def test_timeout_shedding(self):
        config = ClusterConfig(
            replicas=1, queue_capacity=64, max_outstanding=1,
            admission_timeout=0.2,
        )
        cluster, result = small_run(config, rate=30.0, duration=1.0)
        shed_timeout = cluster.gateway.metrics.counter(
            "cluster.gateway.shed.timeout"
        ).value
        assert shed_timeout > 0
        assert result.completed + result.shed == result.offered

    def test_queue_depth_recorded(self):
        config = ClusterConfig(replicas=1, max_outstanding=1)
        cluster, result = small_run(config, rate=20.0, duration=1.0)
        series = cluster.gateway.metrics.timeseries("cluster.gateway.queue_depth")
        assert series.points
        assert max(v for _, v in series.points) > 0


class TestPolicies:
    def test_affinity_needs_fewer_handshakes(self):
        _, affinity = small_run(
            ClusterConfig(replicas=4, policy="affinity"), rate=4.0
        )
        _, spread = small_run(
            ClusterConfig(replicas=4, policy="round-robin"), rate=4.0
        )
        # Same workload either way; sticking tenants to replicas means
        # strictly fewer (tenant, replica) sessions.
        assert affinity.completed == spread.completed
        assert affinity.handshakes < spread.handshakes
        assert affinity.prefix_hits >= spread.prefix_hits

    def test_least_loaded_uses_whole_fleet(self):
        _, result = small_run(
            ClusterConfig(replicas=2, policy="least-loaded"), rate=6.0
        )
        assert all(frac > 0 for frac in result.utilization.values())


class TestTelemetry:
    def test_cluster_events_recorded(self):
        from repro.telemetry import ClusterEvent, recording

        with recording() as session:
            _, result = small_run(ClusterConfig(replicas=2))
        gateway_hubs = [h for h in session.hubs if h.label == "gateway"]
        assert len(gateway_hubs) == 1
        events = gateway_hubs[0].events_of(ClusterEvent)
        actions = {e.action for e in events}
        assert {"enqueue", "dispatch", "handshake", "complete"} <= actions
        completes = [e for e in events if e.action == "complete"]
        assert len(completes) == result.completed

    def test_chrome_trace_has_cluster_lane(self):
        from repro.telemetry import chrome_trace, recording

        with recording() as session:
            small_run(ClusterConfig(replicas=2))
        trace = chrome_trace(session.hubs)
        names = {e.get("name") for e in trace["traceEvents"]}
        assert any(n and n.startswith("cluster") or n == "step"
                   for n in names if n)


class TestWorkload:
    def test_tenant_assignment_within_bounds(self):
        cluster = Cluster(ClusterConfig(replicas=1, seed=3))
        creqs = cluster.workload(rate=10.0, duration=2.0, tenants=3)
        tenants = {c.tenant for c in creqs}
        assert tenants <= {f"tenant-{i}" for i in range(3)}
        assert all(len(c.payload) == 16 for c in creqs)

    def test_trace_spec_is_small(self):
        assert CLUSTER_TRACE.max_prompt <= 256
        assert CLUSTER_TRACE.max_output <= 64

    def test_run_cluster_convenience(self):
        result = run_cluster(
            ClusterConfig(replicas=1), rate=2.0, duration=2.0, tenants=2
        )
        assert result.completed + result.shed == result.offered
