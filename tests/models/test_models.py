"""Model geometry tests: sizes must match the paper's statements."""

import pytest

from repro.hw import GB
from repro.models import (
    KvGeometry,
    MODELS,
    OPT_13B,
    OPT_175B_4BIT,
    OPT_30B,
    OPT_66B,
    TransformerCostModel,
)


class TestPaperSizes:
    def test_opt66b_exceeds_h100(self):
        # §1: "the OPT-66B model needs approximately 132GB" (decimal).
        assert OPT_66B.total_bytes == pytest.approx(132e9, rel=0.05)
        assert OPT_66B.total_bytes > 80 * GB

    def test_opt30b_fits_at_75_percent(self):
        # §7.2: OPT-30B ≈ 60 GB ≈ 75 % of GPU memory (decimal GB).
        assert OPT_30B.total_bytes == pytest.approx(60e9, rel=0.05)
        assert 0.65 < OPT_30B.total_bytes / (80 * GB) < 0.80

    def test_opt13b_fits_at_a_third(self):
        # §7.2: OPT-13B ≈ 26 GB ≈ 32.5 % of GPU memory (decimal GB).
        assert OPT_13B.total_bytes == pytest.approx(26e9, rel=0.05)

    def test_opt175b_4bit_exceeds_h100(self):
        assert OPT_175B_4BIT.total_bytes > 80 * GB

    def test_param_counts_roughly_nominal(self):
        assert OPT_13B.total_params == pytest.approx(13e9, rel=0.08)
        assert OPT_30B.total_params == pytest.approx(30e9, rel=0.08)
        assert OPT_66B.total_params == pytest.approx(66e9, rel=0.08)

    def test_registry(self):
        assert set(MODELS) == {"opt-13b", "opt-30b", "opt-66b", "opt-175b-4bit"}


class TestKvGeometry:
    def test_block_bytes(self):
        geometry = KvGeometry(OPT_30B, block_size=16)
        per_token = OPT_30B.kv_bytes_per_token()
        assert geometry.block_bytes == 16 * per_token

    def test_blocks_for_tokens_ceiling(self):
        geometry = KvGeometry(OPT_30B, block_size=16)
        assert geometry.blocks_for_tokens(0) == 0
        assert geometry.blocks_for_tokens(1) == 1
        assert geometry.blocks_for_tokens(16) == 1
        assert geometry.blocks_for_tokens(17) == 2

    def test_negative_tokens_rejected(self):
        with pytest.raises(ValueError):
            KvGeometry(OPT_30B).blocks_for_tokens(-1)

    def test_gpu_block_budget_positive_for_30b(self):
        geometry = KvGeometry(OPT_30B)
        budget = geometry.gpu_block_budget(80 * GB, reserved_bytes=4 * GB)
        assert budget > 0
        # Roughly 20 GiB of KV space at ~21 MiB/block.
        assert 500 < budget < 1100

    def test_gpu_block_budget_zero_when_model_too_big(self):
        geometry = KvGeometry(OPT_66B)
        assert geometry.gpu_block_budget(80 * GB) == 0


class TestCostModel:
    def test_decode_step_scales_with_layers(self):
        cost = TransformerCostModel(OPT_30B)
        layer = cost.decode_layer(batch=8, mean_context=100)
        step = cost.decode_step(batch=8, mean_context=100)
        assert step.flops == pytest.approx(layer.flops * OPT_30B.n_layers)
        assert step.layers == OPT_30B.n_layers

    def test_decode_reads_weights_once_per_step(self):
        cost = TransformerCostModel(OPT_30B)
        small = cost.decode_step(batch=1, mean_context=10)
        # Weight reads dominate at small batch.
        assert small.bytes_touched >= OPT_30B.n_layers * OPT_30B.layer_bytes

    def test_prefill_scales_with_tokens(self):
        cost = TransformerCostModel(OPT_30B)
        one = cost.prefill(1000)
        two = cost.prefill(2000)
        assert two.flops > 1.9 * one.flops

    def test_finetune_is_three_times_forward(self):
        cost = TransformerCostModel(OPT_13B)
        forward = OPT_13B.layer_prefill_flops(5000)
        assert cost.finetune_layer_step(5000).flops == pytest.approx(3 * forward)

    def test_kv_read_grows_with_context(self):
        cost = TransformerCostModel(OPT_30B)
        short = cost.decode_layer(batch=16, mean_context=10)
        long = cost.decode_layer(batch=16, mean_context=1000)
        assert long.bytes_touched > short.bytes_touched
