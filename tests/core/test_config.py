"""PipeLLMConfig validation tests."""

import pytest

from repro.core import PipeLLMConfig


class TestDefaults:
    def test_paper_defaults(self):
        config = PipeLLMConfig()
        assert config.swap_threshold == 128 * 1024
        assert config.async_decrypt
        assert config.adaptive_leeway
        assert config.sabotage is None
        assert config.kv_depth <= config.depth

    def test_leeway_economics_documented_in_bounds(self):
        config = PipeLLMConfig()
        # NOPs are cheap: the ceiling must allow substantial headroom.
        assert config.max_leeway >= 32


class TestValidation:
    def test_depth_positive(self):
        with pytest.raises(ValueError):
            PipeLLMConfig(depth=0)

    def test_leeway_non_negative(self):
        with pytest.raises(ValueError):
            PipeLLMConfig(leeway=-1)
        with pytest.raises(ValueError):
            PipeLLMConfig(max_leeway=-1)

    def test_threshold_positive(self):
        with pytest.raises(ValueError):
            PipeLLMConfig(swap_threshold=0)

    def test_sabotage_checked_downstream(self):
        # The config carries the string; the predictor validates it.
        from repro.core import SwapPredictor, TransferClassifier

        with pytest.raises(ValueError):
            SwapPredictor(TransferClassifier(), sabotage="nonsense")
