"""SwapPredictor tests: class routing, hypothesis racing, sabotage."""

import pytest

from repro.core import SwapClass, SwapPredictor, TransferClassifier

WEIGHT = 2 << 30
KV = 300 << 20


@pytest.fixture
def predictor():
    classifier = TransferClassifier()
    classifier.register_weight_size(WEIGHT)
    return SwapPredictor(classifier)


class TestRouting:
    def test_weight_swaps_feed_repetitive(self, predictor):
        addrs = [i << 32 for i in range(3)]
        for addr in addrs + addrs[:1]:
            predictor.observe_swap_in(addr, WEIGHT)
        preds = predictor.predict(2, SwapClass.WEIGHTS)
        assert [p.addr for p in preds] == [addrs[1], addrs[2]]
        assert all(p.swap_class is SwapClass.WEIGHTS for p in preds)

    def test_kv_swaps_feed_pool_detectors(self, predictor):
        for i in range(3):
            predictor.observe_swap_out(i << 32, KV)
        preds = predictor.predict(2, SwapClass.KV_CACHE)
        # Default best hypothesis is LIFO (vLLM's policy).
        assert [p.addr for p in preds] == [2 << 32, 1 << 32]

    def test_small_transfers_ignored(self, predictor):
        predictor.observe_swap_in(1 << 32, 1024)
        predictor.observe_swap_out(1 << 32, 1024)
        assert predictor.swap_ins_observed == 0
        assert predictor.swap_outs_observed == 0


class TestHypothesisRacing:
    def test_fifo_wins_on_fifo_traffic(self, predictor):
        for i in range(8):
            predictor.observe_swap_out(i << 32, KV)
        for i in range(6):
            predictor.observe_swap_in(i << 32, KV)
        best = predictor.best_detector(SwapClass.KV_CACHE)
        assert best.name == "fifo"
        preds = predictor.predict(1, SwapClass.KV_CACHE)
        assert preds[0].addr == 6 << 32

    def test_lifo_wins_on_lifo_traffic(self, predictor):
        for i in range(8):
            predictor.observe_swap_out(i << 32, KV)
        for i in (7, 6, 5):
            predictor.observe_swap_in(i << 32, KV)
        assert predictor.best_detector(SwapClass.KV_CACHE).name == "lifo"

    def test_scores_exposed(self, predictor):
        scores = predictor.scores()
        assert "kv_cache.lifo" in scores
        assert "weights.repetitive" in scores


class TestPredictAll:
    def test_weights_take_priority(self, predictor):
        addrs = [i << 32 for i in range(2)]
        for addr in addrs + addrs + addrs[:1]:
            predictor.observe_swap_in(addr, WEIGHT)
        for i in range(10, 14):
            predictor.observe_swap_out(i << 32, KV)
        preds = predictor.predict_all(4)
        assert preds[0].swap_class is SwapClass.WEIGHTS

    def test_kv_count_cap(self, predictor):
        for i in range(8):
            predictor.observe_swap_out(i << 32, KV)
        preds = predictor.predict_all(8, kv_count=3)
        assert len(preds) == 3


class TestSabotage:
    def test_reverse_keeps_set_wrecks_order(self):
        classifier = TransferClassifier()
        straight = SwapPredictor(classifier)
        reverse = SwapPredictor(classifier, sabotage="reverse")
        for p in (straight, reverse):
            for i in range(4):
                p.observe_swap_out(i << 32, KV)
        a = [t.addr for t in straight.predict(4, SwapClass.KV_CACHE)]
        b = [t.addr for t in reverse.predict(4, SwapClass.KV_CACHE)]
        assert a == list(reversed(b))
        assert set(a) == set(b)

    def test_unknown_sabotage_rejected(self):
        with pytest.raises(ValueError):
            SwapPredictor(TransferClassifier(), sabotage="scramble")
