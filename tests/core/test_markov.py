"""MarkovDetector tests — the learned-predictor extension (§5.1
future work: replace the hand-written pattern heuristics with a
learned f)."""

import pytest

from repro.core import MarkovDetector, SwapClass, SwapPredictor, TransferClassifier


def key(i):
    return (i * 4096, 1 << 20)


class TestLearning:
    def test_learns_periodic_sequence(self):
        det = MarkovDetector()
        for k in [key(0), key(1), key(2)] * 3:
            det.observe_swap_in(k)
        # Last seen key(2): its most common successor is key(0).
        assert det.predict(3) == [key(0), key(1), key(2)]

    def test_learns_majority_successor(self):
        det = MarkovDetector()
        # A -> B twice, A -> C once: predict B after A.
        for successor in (1, 2, 1):
            det.observe_swap_in(key(0))
            det.observe_swap_in(key(successor))
        det.observe_swap_in(key(0))
        assert det.predict(1) == [key(1)]

    def test_no_prediction_cold(self):
        assert MarkovDetector().predict(3) == []

    def test_prediction_walk_terminates_on_cycle(self):
        det = MarkovDetector()
        for k in [key(0), key(1)] * 4:
            det.observe_swap_in(k)
        # A two-cycle: the walk must stop rather than loop forever.
        preds = det.predict(100)
        assert 1 <= len(preds) <= 100

    def test_score_rises_on_predictable_traffic(self):
        det = MarkovDetector()
        for k in [key(0), key(1), key(2), key(3)] * 6:
            det.observe_swap_in(k)
        assert det.score > 0.8

    def test_successor_table_bounded(self):
        det = MarkovDetector(max_successors=4)
        for i in range(1, 20):
            det.observe_swap_in(key(0))
            det.observe_swap_in(key(i))
        assert len(det._transitions[key(0)]) <= 4


class TestIntegration:
    def test_markov_races_with_builtin_detectors(self):
        predictor = SwapPredictor(TransferClassifier())
        scores = predictor.scores()
        assert "kv_cache.markov" in scores
        assert "weights.markov" in scores

    def test_markov_wins_on_non_lifo_kv_traffic(self):
        """Swap-outs in order A,B,C but swap-ins always B,C,A: neither
        pure LIFO nor pure FIFO fits, while the transition structure
        is exactly learnable."""
        predictor = SwapPredictor(TransferClassifier())
        size = 300 << 20
        a, b, c = 1 << 32, 2 << 32, 3 << 32
        for _ in range(8):
            for addr in (a, b, c):
                predictor.observe_swap_out(addr, size)
            for addr in (b, c, a):
                predictor.observe_swap_in(addr, size)
        scores = predictor.scores()
        best = predictor.best_detector(SwapClass.KV_CACHE)
        assert best.name in ("markov", "repetitive")
        assert best.score > 0.8
        assert scores["kv_cache.markov"] > scores["kv_cache.fifo"]
