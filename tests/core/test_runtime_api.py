"""Additional PipeLLMRuntime API-surface tests."""

import pytest

from repro.cc import CcMode, build_machine
from repro.core import PipeLLMConfig, PipeLLMRuntime
from repro.hw import MB, MemoryChunk

KV = 2 * MB


def make(**cfg):
    machine = build_machine(CcMode.ENABLED, enc_threads=2, dec_threads=2)
    return machine, PipeLLMRuntime(machine, PipeLLMConfig(**cfg) if cfg else None)


class TestCpuAccess:
    def test_triggered_for_untracked_address(self):
        _, runtime = make()
        assert runtime.cpu_access(123456).triggered

    def test_waits_for_async_decrypt(self):
        machine, runtime = make()
        region = machine.host_memory.allocate(KV, "kv")
        machine.gpu._contents["kv"] = b"data"
        waited = {}

        def app(sim):
            handle = runtime.memcpy_d2h(MemoryChunk(region.addr, KV, b"", "kv"))
            yield handle.complete
            t0 = sim.now
            yield runtime.cpu_access(region.addr)
            waited["stall"] = sim.now - t0

        machine.sim.process(app(machine.sim))
        machine.run()
        assert waited["stall"] > 0

    def test_superseded_swap_out_releases_waiters(self):
        """A second swap-out to the same region must not strand anyone
        waiting on the first pending decrypt (fuzzer-found deadlock)."""
        machine, runtime = make()
        region = machine.host_memory.allocate(KV, "kv")
        machine.gpu._contents["kv"] = b"v2"
        finished = []

        def app(sim):
            first = runtime.memcpy_d2h(MemoryChunk(region.addr, KV, b"v1", "kv"))
            yield first.api_done
            second = runtime.memcpy_d2h(MemoryChunk(region.addr, KV, b"v2", "kv"))
            yield second.api_done
            yield runtime.synchronize()
            yield runtime.cpu_access(region.addr)
            finished.append(machine.host_memory.read(region.addr))

        machine.sim.process(app(machine.sim))
        machine.run()
        assert finished, "cpu_access deadlocked on the superseded pending decrypt"
        assert finished[0] == b"v2"
        assert machine.gpu.auth_failures == 0


class TestTraceAndObservers:
    def test_pipellm_traces_like_baseline(self):
        machine, runtime = make()
        region = machine.host_memory.allocate(KV, "w", b"x")
        seen = []
        runtime.add_observer(lambda record: seen.append((record.direction, record.size)))

        def app():
            yield runtime.memcpy_h2d(machine.host_memory.chunk_at(region.addr)).complete

        machine.sim.process(app())
        machine.run()
        assert seen == [("h2d", KV)]
        assert len(runtime.trace) == 1


class TestFreedRegions:
    def test_free_kills_staged_entry(self):
        machine, runtime = make()
        region = machine.host_memory.allocate(KV, "kv")
        machine.gpu._contents["kv"] = b"x"

        def app(sim):
            handle = runtime.memcpy_d2h(MemoryChunk(region.addr, KV, b"", "kv"))
            yield handle.api_done
            yield runtime.synchronize()
            yield sim.timeout(0.05)  # decrypt lands; chunk gets staged

        machine.sim.process(app(machine.sim))
        machine.run()
        assert runtime.pipeline.find(region.addr, region.size) is not None
        machine.host_memory.free(region)
        assert runtime.pipeline.find(region.addr, region.size) is None

    def test_free_releases_pending_decrypt_waiters(self):
        machine, runtime = make()
        region = machine.host_memory.allocate(KV, "kv")
        machine.gpu._contents["kv"] = b"x"
        done = []

        def app(sim):
            handle = runtime.memcpy_d2h(MemoryChunk(region.addr, KV, b"", "kv"))
            yield handle.complete
            gate = runtime.cpu_access(region.addr)
            machine.host_memory.free(region)  # discarded before decrypt
            yield gate
            done.append(True)

        machine.sim.process(app(machine.sim))
        machine.run()
        assert done
