"""Validator decision-logic tests (§5.2)."""

import pytest

from repro.cc import CcMode, build_machine
from repro.core import (
    PipeLLMConfig,
    SpeculationPipeline,
    SwapPredictor,
    TransferClassifier,
    ValidationOutcome,
    Validator,
)
from repro.hw import MB

KV = 4 * MB


@pytest.fixture
def setup():
    machine = build_machine(CcMode.ENABLED, enc_threads=2)
    pipeline = SpeculationPipeline(machine, PipeLLMConfig(depth=4, kv_depth=4))
    predictor = SwapPredictor(TransferClassifier())
    validator = Validator(pipeline)
    return machine, pipeline, predictor, validator


def stage_one(machine, pipeline, predictor, index=0, leeway=0):
    region = machine.host_memory.allocate(KV, f"kv.{index}", b"x")
    predictor.observe_swap_out(region.addr, region.size)
    pipeline.refill(predictor, leeway=leeway)
    return region


class TestOutcomes:
    def test_hit_now(self, setup):
        machine, pipeline, predictor, validator = setup
        region = stage_one(machine, pipeline, predictor)
        current = machine.cpu_endpoint.tx_iv.current
        validation = validator.validate(region.addr, region.size, current)
        assert validation.outcome is ValidationOutcome.HIT_NOW
        assert validation.usable
        assert validator.hits == 1

    def test_hit_future(self, setup):
        machine, pipeline, predictor, validator = setup
        region = stage_one(machine, pipeline, predictor, leeway=3)
        current = machine.cpu_endpoint.tx_iv.current
        validation = validator.validate(region.addr, region.size, current)
        assert validation.outcome is ValidationOutcome.HIT_FUTURE
        assert validation.usable
        assert validator.future_hits == 1

    def test_stale(self, setup):
        machine, pipeline, predictor, validator = setup
        region = stage_one(machine, pipeline, predictor)
        entry = pipeline.valid_entries[0]
        validation = validator.validate(region.addr, region.size, entry.iv + 5)
        assert validation.outcome is ValidationOutcome.STALE
        assert not validation.usable
        assert validator.stale == 1

    def test_miss(self, setup):
        machine, pipeline, predictor, validator = setup
        validation = validator.validate(12345, KV, 1)
        assert validation.outcome is ValidationOutcome.MISS
        assert validation.entry is None
        assert validator.misses == 1

    def test_invalidated_entry_is_miss(self, setup):
        machine, pipeline, predictor, validator = setup
        region = stage_one(machine, pipeline, predictor)
        pipeline.invalidate_overlapping(region.addr, region.size)
        current = machine.cpu_endpoint.tx_iv.current
        validation = validator.validate(region.addr, region.size, current)
        assert validation.outcome is ValidationOutcome.MISS


class TestAccounting:
    def test_success_rate(self, setup):
        machine, pipeline, predictor, validator = setup
        region = stage_one(machine, pipeline, predictor)
        current = machine.cpu_endpoint.tx_iv.current
        validator.validate(region.addr, region.size, current)  # hit
        validator.validate(999, KV, current)                    # miss
        assert validator.requests == 2
        assert validator.success_rate == pytest.approx(0.5)

    def test_empty_success_rate(self, setup):
        _, _, _, validator = setup
        assert validator.success_rate == 0.0
