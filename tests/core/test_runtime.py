"""PipeLLMRuntime behaviour tests.

Every test's background invariant: the GPU copy-engine model performs
real AES-GCM authentication, so ``machine.gpu.auth_failures == 0`` at
the end of a test proves the runtime's IV bookkeeping was sound for
that scenario — not merely that counters look right.
"""

import pytest

from repro.cc import CcMode, build_machine
from repro.core import PipeLLMConfig, PipeLLMRuntime
from repro.hw import MB, MemoryChunk

LAYER = 8 * MB
KV = 4 * MB


def make(enc=4, dec=2, **cfg):
    machine = build_machine(CcMode.ENABLED, enc_threads=enc, dec_threads=dec)
    runtime = PipeLLMRuntime(machine, PipeLLMConfig(**cfg) if cfg else None)
    return machine, runtime


def drive(machine, generator):
    machine.sim.process(generator)
    machine.run()
    assert machine.gpu.auth_failures == 0, "IV bookkeeping broke GCM auth"


class TestConstruction:
    def test_requires_cc(self):
        with pytest.raises(ValueError):
            PipeLLMRuntime(build_machine(CcMode.DISABLED))

    def test_hints_register(self):
        _, runtime = make()
        runtime.hint_weight_chunk_size(LAYER)
        runtime.hint_kv_block_size(KV)
        assert LAYER in runtime.classifier.weight_sizes
        assert KV in runtime.classifier.kv_block_sizes


class TestSmallTransfers:
    def test_small_h2d_not_pipelined(self):
        machine, runtime = make()
        region = machine.host_memory.allocate(1024, "tok", b"ids")

        def app():
            yield runtime.memcpy_h2d(region.chunk()).complete

        drive(machine, app())
        assert runtime.small_transfers == 1
        assert runtime.validator.requests == 0
        assert machine.gpu.read_plaintext("tok") == b"ids"

    def test_small_consumes_iv(self):
        machine, runtime = make()
        region = machine.host_memory.allocate(1024, "tok", b"x")

        def app():
            yield runtime.memcpy_h2d(region.chunk()).complete

        drive(machine, app())
        assert machine.cpu_endpoint.tx_iv.consumed == 1


class TestRepetitiveFlow:
    def test_steady_state_hits(self):
        machine, runtime = make()
        regions = [
            machine.host_memory.allocate(LAYER, f"layer.{i}", f"L{i}".encode())
            for i in range(3)
        ]
        runtime.hint_weight_chunk_size(LAYER)

        def app():
            for _ in range(6):
                for region in regions:
                    handle = runtime.memcpy_h2d(region.chunk())
                    yield handle.api_done
                    yield handle.complete
                    yield machine.sim.timeout(1e-3)

        drive(machine, app())
        stats = runtime.stats()
        # Cold start misses, then pure hits.
        assert stats["misses"] <= 4
        assert stats["hits"] + stats["future_hits"] >= 14
        assert machine.gpu.read_plaintext("layer.2") == b"L2"

    def test_hit_api_returns_fast(self):
        machine, runtime = make()
        regions = [
            machine.host_memory.allocate(LAYER, f"layer.{i}", b"w") for i in range(2)
        ]
        api_times = []

        def app():
            for _ in range(4):
                for region in regions:
                    handle = runtime.memcpy_h2d(region.chunk())
                    t0 = machine.sim.now
                    yield handle.api_done
                    api_times.append(machine.sim.now - t0)
                    yield handle.complete

        drive(machine, app())
        # Once the pattern locks, the API call no longer blocks on AES.
        assert api_times[-1] < 10e-6
        assert api_times[0] > 100e-6  # Cold miss blocked on encryption.


class TestLifoFlow:
    def _swap_cycle(self, machine, runtime, count):
        """Swap out `count` KV chunks then swap them back LIFO."""
        regions = []
        for i in range(count):
            region = machine.host_memory.allocate(KV, f"kv.{i}")
            machine.gpu._contents[f"kv.{i}"] = f"kv-{i}".encode()
            regions.append(region)

        def app():
            for region in regions:
                handle = runtime.memcpy_d2h(
                    MemoryChunk(region.addr, KV, b"", region.tag)
                )
                yield handle.api_done
            yield runtime.synchronize()
            yield machine.sim.timeout(0.1)  # decryption + staging time
            for region in reversed(regions):
                yield runtime.cpu_access(region.addr)
                chunk = machine.host_memory.chunk_at(region.addr)
                handle = runtime.memcpy_h2d(chunk)
                yield handle.api_done
            yield runtime.synchronize()

        drive(machine, app())
        return regions

    def test_lifo_roundtrip_content(self):
        machine, runtime = make(kv_depth=4)
        self._swap_cycle(machine, runtime, 3)
        for i in range(3):
            assert machine.gpu.read_plaintext(f"kv.{i}") == f"kv-{i}".encode()

    def test_lifo_predictions_hit(self):
        machine, runtime = make(kv_depth=4)
        self._swap_cycle(machine, runtime, 3)
        stats = runtime.stats()
        assert stats["success_rate"] == 1.0
        assert stats["async_decrypts"] == 3


class TestAsyncDecryption:
    def test_d2h_returns_before_decryption(self):
        machine, runtime = make()
        region = machine.host_memory.allocate(64 * MB, "kv.big")
        machine.gpu._contents["kv.big"] = b"big-kv"
        times = {}

        def app():
            handle = runtime.memcpy_d2h(MemoryChunk(region.addr, 64 * MB, b"", "kv.big"))
            yield handle.complete
            times["complete"] = machine.sim.now
            yield runtime.cpu_access(region.addr)
            times["plaintext"] = machine.sim.now

        drive(machine, app())
        # The memcpy returned before decryption finished (§5.4).
        assert times["plaintext"] > times["complete"]
        assert machine.host_memory.read(region.addr) == b"big-kv"
        assert runtime.async_decrypts == 1

    def test_usage_before_decryption_faults_synchronously(self):
        machine, runtime = make()
        region = machine.host_memory.allocate(64 * MB, "kv.big")
        machine.gpu._contents["kv.big"] = b"big-kv"
        payloads = {}

        def app():
            handle = runtime.memcpy_d2h(MemoryChunk(region.addr, 64 * MB, b"", "kv.big"))
            yield handle.complete
            # Touch immediately — before the async decrypt lands.
            payloads["data"] = machine.host_memory.read(region.addr)

        drive(machine, app())
        assert payloads["data"] == b"big-kv"
        assert runtime.sync_decrypts == 1

    def test_sync_decrypt_when_disabled(self):
        machine, runtime = make(async_decrypt=False)
        region = machine.host_memory.allocate(64 * MB, "kv.big")
        machine.gpu._contents["kv.big"] = b"big-kv"
        times = {}

        def app():
            handle = runtime.memcpy_d2h(MemoryChunk(region.addr, 64 * MB, b"", "kv.big"))
            yield handle.complete
            times["complete"] = machine.sim.now
            # Data must already be readable without any wait.
            assert machine.host_memory.read(region.addr) == b"big-kv"

        drive(machine, app())
        assert runtime.async_decrypts == 0

    def test_small_d2h_is_synchronous(self):
        machine, runtime = make()
        region = machine.host_memory.allocate(1024, "tok.out")
        machine.gpu._contents["tok.out"] = b"token"

        def app():
            handle = runtime.memcpy_d2h(MemoryChunk(region.addr, 1024, b"", "tok.out"))
            yield handle.complete
            assert machine.host_memory.read(region.addr) == b"token"

        drive(machine, app())
        assert runtime.async_decrypts == 0


class TestWriteInvalidation:
    def test_stale_plaintext_never_shipped(self):
        machine, runtime = make()
        regions = [
            machine.host_memory.allocate(LAYER, f"layer.{i}", b"v0") for i in range(2)
        ]

        def app():
            # Lock the repetitive pattern.
            for _ in range(3):
                for region in regions:
                    handle = runtime.memcpy_h2d(machine.host_memory.chunk_at(region.addr))
                    yield handle.complete
            # Update layer 0 in place: the staged ciphertext for it is
            # now stale and must be invalidated via the page fault.
            machine.host_memory.write(regions[0].addr, b"v1")
            handle = runtime.memcpy_h2d(machine.host_memory.chunk_at(regions[0].addr))
            yield handle.complete

        drive(machine, app())
        assert machine.gpu.read_plaintext("layer.0") == b"v1"
        assert runtime.pipeline.invalidated_by_fault >= 1


class TestStats:
    def test_stats_keys_complete(self):
        _, runtime = make()
        stats = runtime.stats()
        for key in (
            "swap_requests", "hits", "future_hits", "stale", "misses",
            "success_rate", "nops_sent", "ondemand_encryptions",
            "small_transfers", "deferred", "sync_decrypts",
            "async_decrypts", "staged_total", "invalidated_by_fault",
            "invalidated_by_iv_skip", "relinquishes", "evicted",
            "gpu_auth_failures",
        ):
            assert key in stats
