"""Error-handler scenarios (§5.3): re-ordering, NOPs, relinquish.

Includes a direct reconstruction of the paper's Figure 6 example.
"""

import pytest

from repro.cc import CcMode, build_machine
from repro.core import PipeLLMConfig, PipeLLMRuntime
from repro.hw import MB, MemoryChunk

KV = 4 * MB


def make(**cfg):
    machine = build_machine(CcMode.ENABLED, enc_threads=4, dec_threads=2)
    defaults = dict(kv_depth=8, depth=8)
    defaults.update(cfg)
    runtime = PipeLLMRuntime(machine, PipeLLMConfig(**defaults))
    return machine, runtime


def swap_out_n(machine, runtime, count):
    """Swap out ``count`` KV chunks (oldest first) and settle."""
    regions = []
    for i in range(count):
        region = machine.host_memory.allocate(KV, f"kv.{i}")
        machine.gpu._contents[f"kv.{i}"] = f"data-{i}".encode()
        regions.append(region)

    def out():
        for region in regions:
            handle = runtime.memcpy_d2h(MemoryChunk(region.addr, KV, b"", region.tag))
            yield handle.api_done
        yield runtime.synchronize()
        yield machine.sim.timeout(0.2)  # let decryption + staging finish

    machine.sim.process(out())
    machine.run()
    return regions


class TestFigure6:
    def test_reorder_and_nop_padding(self):
        """Figure 6: request data3 (staged IV 3), then data1 (IV 1),
        then sync. data1 ships immediately, data3 is suspended, the
        sync pads a NOP over data2's IV and commits data3."""
        machine, runtime = make()
        swap_out_n(machine, runtime, 3)
        ordered = sorted(runtime.pipeline.valid_entries, key=lambda e: e.iv)
        assert len(ordered) == 3
        low, _mid, high = ordered  # "data1", "data2", "data3" of Fig. 6

        def app():
            # "data3": request the entry with the HIGHEST staged IV.
            h_high = runtime.memcpy_h2d(machine.host_memory.chunk_at(high.chunk.addr))
            yield h_high.api_done
            # "data1": then the entry with the LOWEST staged IV.
            h_low = runtime.memcpy_h2d(machine.host_memory.chunk_at(low.chunk.addr))
            yield h_low.api_done
            yield runtime.synchronize()
            assert h_high.complete.triggered
            assert h_low.complete.triggered

        machine.sim.process(app())
        machine.run()
        assert machine.gpu.auth_failures == 0
        stats = runtime.stats()
        assert stats["deferred"] == 1          # data3 was suspended
        assert stats["nops_sent"] >= 1         # data2's IV was padded over
        assert stats["misses"] == 0            # both served from staging
        assert machine.gpu.read_plaintext(high.chunk.tag) == machine.host_memory.read(
            high.chunk.addr
        )

    def test_skipped_entry_is_invalidated(self):
        machine, runtime = make()
        swap_out_n(machine, runtime, 3)
        high = max(runtime.pipeline.valid_entries, key=lambda e: e.iv)

        def app():
            # Request only the highest-IV entry; the NOPs at the sync
            # boundary skip (and kill) the entries staged below it.
            handle = runtime.memcpy_h2d(machine.host_memory.chunk_at(high.chunk.addr))
            yield handle.api_done
            yield runtime.synchronize()

        machine.sim.process(app())
        machine.run()
        assert machine.gpu.auth_failures == 0
        assert runtime.pipeline.invalidated_by_iv_skip >= 1


class TestWatchdog:
    def test_deferred_resolves_without_sync(self):
        """An app that waits on the transfer itself (FlexGen style)
        must not deadlock when its request was suspended."""
        machine, runtime = make()
        regions = swap_out_n(machine, runtime, 3)
        done = []

        def app():
            handle = runtime.memcpy_h2d(machine.host_memory.chunk_at(regions[0].addr))
            yield handle.complete  # no synchronize() anywhere
            done.append(machine.sim.now)

        machine.sim.process(app())
        machine.run()
        assert done, "deferred request never resolved"
        assert machine.gpu.auth_failures == 0


class TestOnDemandMiss:
    def test_unpredicted_chunk_served_on_demand(self):
        machine, runtime = make()
        region = machine.host_memory.allocate(KV, "surprise", b"unexpected")

        def app():
            handle = runtime.memcpy_h2d(machine.host_memory.chunk_at(region.addr))
            yield handle.complete

        machine.sim.process(app())
        machine.run()
        assert machine.gpu.auth_failures == 0
        assert runtime.stats()["misses"] == 1
        assert machine.gpu.read_plaintext("surprise") == b"unexpected"

    def test_miss_kills_conflicting_staged_entry(self):
        machine, runtime = make(leeway=0, adaptive_leeway=False)
        regions = swap_out_n(machine, runtime, 1)
        entry = runtime.pipeline.valid_entries[0]
        surprise = machine.host_memory.allocate(KV, "surprise", b"u")

        def app():
            # The on-demand miss consumes exactly the staged entry's IV.
            handle = runtime.memcpy_h2d(machine.host_memory.chunk_at(surprise.addr))
            yield handle.complete

        assert entry.iv == machine.cpu_endpoint.tx_iv.current
        machine.sim.process(app())
        machine.run()
        assert machine.gpu.auth_failures == 0
        assert not entry.valid
        assert entry.invalid_reason in ("iv-skipped", "left-prediction-window")


class TestRelinquish:
    def test_consecutive_stales_relinquish(self):
        machine, runtime = make()
        swap_out_n(machine, runtime, 4)
        # Force every staged entry stale by consuming IVs behind the
        # pipeline's back via small transfers... then request swaps.
        small = machine.host_memory.allocate(1024, "tok", b"t")
        regions2 = [machine.host_memory.allocate(KV, f"x{i}", b"y") for i in range(3)]

        def app():
            for region in regions2:
                handle = runtime.memcpy_h2d(machine.host_memory.chunk_at(region.addr))
                yield handle.complete

        machine.sim.process(app())
        machine.run()
        assert machine.gpu.auth_failures == 0


class TestPipeLLMZero:
    def test_reversed_predictions_still_safe(self):
        machine, runtime = make(sabotage="reverse")
        regions = swap_out_n(machine, runtime, 3)

        def app():
            for region in reversed(regions):  # true LIFO resume order
                handle = runtime.memcpy_h2d(machine.host_memory.chunk_at(region.addr))
                yield handle.api_done
            yield runtime.synchronize()

        machine.sim.process(app())
        machine.run()
        assert machine.gpu.auth_failures == 0
        for i in range(3):
            assert machine.gpu.read_plaintext(f"kv.{i}") == f"data-{i}".encode()
