"""Unit tests for the adaptive IV-leeway controller (extension).

The controller's contract: multiplicative increase on staleness
deaths, slow decay on staged commits, floored by the EMA of small
transfers per swap, capped by ``max_leeway``.
"""

import pytest

from repro.cc import CcMode, build_machine
from repro.core import PipeLLMConfig, PipeLLMRuntime
from repro.hw import MB, MemoryChunk

KV = 2 * MB


def make(**cfg):
    machine = build_machine(CcMode.ENABLED, enc_threads=2, dec_threads=2)
    runtime = PipeLLMRuntime(machine, PipeLLMConfig(**cfg))
    return machine, runtime


class TestControllerMechanics:
    def test_starts_at_configured_leeway(self):
        _, runtime = make(leeway=4)
        assert runtime._leeway() >= 4

    def test_bump_doubles(self):
        _, runtime = make()
        runtime._leeway_value = 16.0
        runtime._bump_leeway()
        assert runtime._leeway_value == pytest.approx(32.0)

    def test_bump_has_floor(self):
        _, runtime = make()
        runtime._leeway_value = 0.0
        runtime._bump_leeway()
        assert runtime._leeway_value >= 8.0

    def test_bump_capped(self):
        _, runtime = make(max_leeway=64)
        runtime._leeway_value = 60.0
        runtime._bump_leeway()
        assert runtime._leeway_value == 64.0

    def test_fixed_mode_ignores_controller(self):
        _, runtime = make(adaptive_leeway=False, leeway=5)
        runtime._leeway_value = 1000.0
        assert runtime._leeway() == 5

    def test_ema_floor(self):
        _, runtime = make()
        runtime._leeway_ema = 12.0
        runtime._leeway_value = 0.0
        assert runtime._leeway() == 12


class TestControllerEndToEnd:
    def test_small_transfer_bursts_raise_leeway(self):
        """Interleaving many small transfers between swaps must drive
        the working leeway up (via EMA and/or stale bumps)."""
        machine, runtime = make()
        kv = machine.host_memory.allocate(KV, "kv.0")
        machine.gpu._contents["kv.0"] = b"x"
        small = machine.host_memory.allocate(1024, "tok", b"t")

        def app(sim):
            # Establish the prediction.
            handle = runtime.memcpy_d2h(MemoryChunk(kv.addr, KV, b"", "kv.0"))
            yield handle.api_done
            yield runtime.synchronize()
            yield sim.timeout(0.05)
            for round_index in range(6):
                for _ in range(10):
                    yield runtime.memcpy_h2d(
                        machine.host_memory.chunk_at(small.addr)
                    ).complete
                # Swap in, then immediately back out for the next round.
                yield runtime.cpu_access(kv.addr)
                handle = runtime.memcpy_h2d(machine.host_memory.chunk_at(kv.addr))
                yield handle.api_done
                yield runtime.synchronize()
                handle = runtime.memcpy_d2h(MemoryChunk(kv.addr, KV, b"", "kv.0"))
                yield handle.api_done
                yield runtime.synchronize()
                yield sim.timeout(0.05)

        machine.sim.process(app(machine.sim))
        machine.run()
        assert machine.gpu.auth_failures == 0
        # ~10 smalls between consecutive swaps: the leeway followed.
        assert runtime._leeway() >= 5

    def test_steady_swaps_keep_leeway_low(self):
        machine, runtime = make()
        layers = [
            machine.host_memory.allocate(KV, f"layer.{i}", b"w") for i in range(3)
        ]
        runtime.hint_weight_chunk_size(KV)

        def app(sim):
            for _ in range(6):
                for region in layers:
                    handle = runtime.memcpy_h2d(machine.host_memory.chunk_at(region.addr))
                    yield handle.complete
                    yield sim.timeout(1e-3)

        machine.sim.process(app(machine.sim))
        machine.run()
        assert machine.gpu.auth_failures == 0
        # No small traffic and in-order hits: no reason for headroom.
        assert runtime._leeway() <= 8
