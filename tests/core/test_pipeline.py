"""SpeculationPipeline tests: staging, IV bookkeeping, invalidation."""

import pytest

from repro.cc import CcMode, build_machine
from repro.core import PipeLLMConfig, SpeculationPipeline, SwapPredictor, TransferClassifier
from repro.hw import MB

KV = 4 * MB


@pytest.fixture
def machine():
    return build_machine(CcMode.ENABLED, enc_threads=2)


@pytest.fixture
def config():
    return PipeLLMConfig(depth=4, kv_depth=4)


@pytest.fixture
def pipeline(machine, config):
    return SpeculationPipeline(machine, config)


@pytest.fixture
def predictor():
    return SwapPredictor(TransferClassifier())


def swap_out(machine, predictor, index):
    """Allocate a host region and tell the predictor it swapped out."""
    region = machine.host_memory.allocate(KV, f"kv.{index}", f"kv-{index}".encode())
    predictor.observe_swap_out(region.addr, region.size)
    return region


class TestStaging:
    def test_refill_stages_predictions(self, machine, pipeline, predictor):
        regions = [swap_out(machine, predictor, i) for i in range(3)]
        staged = pipeline.refill(predictor, leeway=0)
        assert staged == 3
        # LIFO order: the newest swap-out is staged first (lowest IV).
        entries = pipeline.valid_entries
        assert entries[0].chunk.addr == regions[2].addr
        assert entries[0].iv < entries[1].iv < entries[2].iv

    def test_refill_is_idempotent(self, machine, pipeline, predictor):
        swap_out(machine, predictor, 0)
        assert pipeline.refill(predictor, leeway=0) == 1
        assert pipeline.refill(predictor, leeway=0) == 0
        assert pipeline.staged_total == 1

    def test_depth_budget_respected(self, machine, predictor):
        config = PipeLLMConfig(depth=2, kv_depth=2)
        pipeline = SpeculationPipeline(build_machine(CcMode.ENABLED), config)
        # Use the pipeline's own machine for regions.
        for i in range(5):
            region = pipeline.machine.host_memory.allocate(KV, f"kv.{i}", b"x")
            predictor.observe_swap_out(region.addr, region.size)
        pipeline.refill(predictor, leeway=0)
        assert len(pipeline.valid_entries) == 2

    def test_staged_bytes_budget(self, machine, predictor):
        config = PipeLLMConfig(depth=8, kv_depth=8, max_staged_bytes=2 * KV)
        pipeline = SpeculationPipeline(machine, config)
        for i in range(4):
            swap_out(machine, predictor, i)
        pipeline.refill(predictor, leeway=0)
        assert pipeline.staged_bytes <= 2 * KV

    def test_blocked_addresses_skipped(self, machine, pipeline, predictor):
        region = swap_out(machine, predictor, 0)
        pipeline.blocked_addrs[region.addr] = "pending-decrypt"
        assert pipeline.refill(predictor, leeway=0) == 0

    def test_stage_protects_pages(self, machine, pipeline, predictor):
        region = swap_out(machine, predictor, 0)
        pipeline.refill(predictor, leeway=0)
        assert machine.host_memory.is_protected(region.addr, region.size, for_write=True)

    def test_leeway_offsets_iv(self, machine, pipeline, predictor):
        swap_out(machine, predictor, 0)
        pipeline.refill(predictor, leeway=5)
        entry = pipeline.valid_entries[0]
        assert entry.iv == machine.cpu_endpoint.tx_iv.current + 5

    def test_freed_region_not_staged(self, machine, pipeline, predictor):
        region = swap_out(machine, predictor, 0)
        machine.host_memory.free(region)
        assert pipeline.refill(predictor, leeway=0) == 0

    def test_requires_cc_machine(self, config):
        with pytest.raises(ValueError):
            SpeculationPipeline(build_machine(CcMode.DISABLED), config)


class TestLookup:
    def test_find_by_addr_size(self, machine, pipeline, predictor):
        region = swap_out(machine, predictor, 0)
        pipeline.refill(predictor, leeway=0)
        assert pipeline.find(region.addr, region.size) is not None
        assert pipeline.find(region.addr, region.size + 1) is None
        assert pipeline.find(region.addr + 1, region.size) is None

    def test_has_valid_below(self, machine, pipeline, predictor):
        for i in range(3):
            swap_out(machine, predictor, i)
        pipeline.refill(predictor, leeway=0)
        entries = pipeline.valid_entries
        assert not pipeline.has_valid_below(entries[0].iv)
        assert pipeline.has_valid_below(entries[2].iv)


class TestInvalidation:
    def test_write_fault_invalidates(self, machine, pipeline, predictor):
        region = swap_out(machine, predictor, 0)
        pipeline.refill(predictor, leeway=0)
        killed = pipeline.invalidate_overlapping(region.addr, region.size)
        assert killed == 1
        assert pipeline.invalidated_by_fault == 1
        assert pipeline.find(region.addr, region.size) is None
        # Protection was dropped with the entry.
        assert not machine.host_memory.is_protected(region.addr, region.size, for_write=True)

    def test_iv_skip_invalidates_exact_iv(self, machine, pipeline, predictor):
        for i in range(2):
            swap_out(machine, predictor, i)
        pipeline.refill(predictor, leeway=0)
        first, second = pipeline.valid_entries
        killed = pipeline.on_iv_consumed(first.iv)
        assert killed is first
        assert not first.valid
        assert second.valid
        assert pipeline.invalidated_by_iv_skip == 1

    def test_iv_skip_miss_returns_none(self, pipeline):
        assert pipeline.on_iv_consumed(999999) is None

    def test_drop_stale(self, machine, pipeline, predictor):
        for i in range(3):
            swap_out(machine, predictor, i)
        pipeline.refill(predictor, leeway=0)
        entries = pipeline.valid_entries
        cutoff = entries[1].iv + 1
        assert pipeline.drop_stale(cutoff) == 2
        assert [e for e in pipeline.valid_entries] == [entries[2]]

    def test_relinquish_spares_reserved(self, machine, pipeline, predictor):
        for i in range(2):
            swap_out(machine, predictor, i)
        pipeline.refill(predictor, leeway=0)
        keep, drop = pipeline.valid_entries
        keep.reserved = True
        killed = pipeline.relinquish()
        assert killed == 1
        assert keep.valid
        assert not drop.valid

    def test_eviction_on_window_change(self, machine, predictor):
        config = PipeLLMConfig(depth=2, kv_depth=2)
        pipeline = SpeculationPipeline(machine, config)
        old = [swap_out(machine, predictor, i) for i in range(2)]
        pipeline.refill(predictor, leeway=0)
        assert len(pipeline.valid_entries) == 2
        # Two newer swap-outs push the old ones out of the window.
        for i in (10, 11):
            swap_out(machine, predictor, i)
        pipeline.refill(predictor, leeway=0)
        assert pipeline.evicted == 2
        live_addrs = {e.chunk.addr for e in pipeline.valid_entries}
        assert all(r.addr not in live_addrs for r in old)

    def test_pop_removes_and_unprotects(self, machine, pipeline, predictor):
        region = swap_out(machine, predictor, 0)
        pipeline.refill(predictor, leeway=0)
        entry = pipeline.valid_entries[0]
        pipeline.pop(entry)
        assert pipeline.find(region.addr, region.size) is None
        assert not machine.host_memory.is_protected(region.addr, region.size, for_write=True)


class TestFunctionalCiphertext:
    def test_staged_message_authenticates_at_predicted_iv(self, machine, pipeline, predictor):
        region = swap_out(machine, predictor, 0)
        pipeline.refill(predictor, leeway=2)
        entry = pipeline.valid_entries[0]
        cpu, gpu = machine.cpu_endpoint, machine.gpu.endpoint
        # Advance both sides to the predicted IV with NOPs.
        while cpu.tx_iv.current < entry.iv:
            gpu.decrypt_next(cpu.encrypt_next(b"\x00"))
        cpu.commit_tx_iv()
        assert gpu.decrypt_next(entry.message) == b"kv-0"
