"""Transfer-classifier tests (§4.2 size heuristics)."""

import pytest

from repro.core import SwapClass, TransferClass, TransferClassifier


@pytest.fixture
def classifier():
    c = TransferClassifier()
    c.register_weight_size(2 << 30)
    c.register_kv_block_size(22 << 20)
    return c


class TestClassification:
    def test_small_below_threshold(self, classifier):
        assert classifier.classify(8 * 1024) is TransferClass.SMALL
        assert classifier.classify(128 * 1024 - 1) is TransferClass.SMALL

    def test_exact_weight_size(self, classifier):
        assert classifier.classify(2 << 30) is TransferClass.WEIGHTS

    def test_exact_kv_size(self, classifier):
        assert classifier.classify(22 << 20) is TransferClass.KV_CACHE

    def test_unknown_large_is_swap_other(self, classifier):
        assert classifier.classify(512 << 20) is TransferClass.SWAP_OTHER

    def test_is_swap(self, classifier):
        assert not classifier.is_swap(1024)
        assert classifier.is_swap(1 << 20)


class TestSwapClassRouting:
    def test_small_has_no_stream(self, classifier):
        assert classifier.swap_class(1024) is None

    def test_weights_route(self, classifier):
        assert classifier.swap_class(2 << 30) is SwapClass.WEIGHTS

    def test_kv_route(self, classifier):
        assert classifier.swap_class(22 << 20) is SwapClass.KV_CACHE

    def test_unknown_large_defaults_to_kv(self, classifier):
        # KV geometry varies with batch shape; weight sizes are exact.
        assert classifier.swap_class(300 << 20) is SwapClass.KV_CACHE


class TestValidation:
    def test_bad_sizes_rejected(self):
        c = TransferClassifier()
        with pytest.raises(ValueError):
            c.register_weight_size(0)
        with pytest.raises(ValueError):
            c.register_kv_block_size(-5)

    def test_custom_threshold(self):
        c = TransferClassifier(swap_threshold=1024)
        assert c.is_swap(2048)
        assert not c.is_swap(512)
