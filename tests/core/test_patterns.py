"""Pattern-detector tests (Figure 5 swap patterns)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import FifoDetector, LifoDetector, RepetitiveDetector


def key(i):
    return (i * 4096, 1 << 20)


class TestRepetitiveDetector:
    def test_locks_onto_cycle(self):
        det = RepetitiveDetector()
        for k in [key(1), key(3), key(4), key(1)]:
            det.observe_swap_in(k)
        # Figure 5a: after ...1,3,4,1 the next reload is layer 3.
        assert det.predict(1) == [key(3)]

    def test_predicts_full_cycle(self):
        det = RepetitiveDetector()
        for k in [key(0), key(1), key(2), key(0)]:
            det.observe_swap_in(k)
        assert det.predict(5) == [key(1), key(2), key(0), key(1), key(2)]

    def test_no_prediction_without_repeat(self):
        det = RepetitiveDetector()
        for i in range(5):
            det.observe_swap_in(key(i))
        assert det.predict(3) == []

    def test_smallest_period_wins(self):
        det = RepetitiveDetector()
        for k in [key(7), key(7), key(7)]:
            det.observe_swap_in(k)
        assert det.predict(2) == [key(7), key(7)]

    def test_score_rises_with_correct_predictions(self):
        det = RepetitiveDetector()
        sequence = [key(0), key(1), key(2)] * 6
        for k in sequence:
            det.observe_swap_in(k)
        assert det.score > 0.8

    def test_score_falls_on_pattern_change(self):
        det = RepetitiveDetector()
        for k in [key(0), key(1)] * 4:
            det.observe_swap_in(k)
        high = det.score
        for k in [key(9), key(8), key(7), key(6)]:
            det.observe_swap_in(k)
        assert det.score < high

    def test_swap_out_is_ignored(self):
        det = RepetitiveDetector()
        det.observe_swap_out(key(1))
        assert det.predict(1) == []

    def test_backward_forward_sequence(self):
        # The PEFT pattern: fwd 0..2 then bwd 2..0, repeated.
        det = RepetitiveDetector()
        step = [key(0), key(1), key(2), key(2), key(1), key(0)]
        for k in step * 2 + step[:1]:
            det.observe_swap_in(k)
        assert det.predict(2) == [key(1), key(2)]


class TestFifoDetector:
    def test_predicts_oldest_first(self):
        det = FifoDetector()
        for i in range(4):
            det.observe_swap_out(key(i))
        assert det.predict(2) == [key(0), key(1)]

    def test_swap_in_removes_from_pool(self):
        det = FifoDetector()
        det.observe_swap_out(key(0))
        det.observe_swap_out(key(1))
        det.observe_swap_in(key(0))
        assert det.predict(2) == [key(1)]

    def test_rewrites_move_to_back(self):
        det = FifoDetector()
        det.observe_swap_out(key(0))
        det.observe_swap_out(key(1))
        det.observe_swap_out(key(0))  # Swapped out again: now newest.
        assert det.predict(2) == [key(1), key(0)]

    def test_score_tracks_fifo_traffic(self):
        det = FifoDetector()
        for i in range(6):
            det.observe_swap_out(key(i))
        for i in range(6):
            det.observe_swap_in(key(i))
        assert det.score > 0.9


class TestLifoDetector:
    def test_predicts_newest_first(self):
        det = LifoDetector()
        for i in range(4):
            det.observe_swap_out(key(i))
        assert det.predict(2) == [key(3), key(2)]

    def test_score_tracks_lifo_traffic(self):
        det = LifoDetector()
        for i in range(6):
            det.observe_swap_out(key(i))
        for i in reversed(range(6)):
            det.observe_swap_in(key(i))
        assert det.score > 0.9

    def test_lifo_scores_zero_on_fifo_traffic(self):
        det = LifoDetector()
        for i in range(6):
            det.observe_swap_out(key(i))
        for i in range(6):
            det.observe_swap_in(key(i))
        assert det.score < 0.5

    def test_predict_zero(self):
        det = LifoDetector()
        det.observe_swap_out(key(1))
        assert det.predict(0) == []


class TestScoring:
    def test_unprimed_detectors_score_zero(self):
        assert RepetitiveDetector().score == 0.0
        assert FifoDetector().score == 0.0

    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_scores_bounded(self, layers):
        det = RepetitiveDetector()
        for layer in layers:
            det.observe_swap_in(key(layer))
        assert 0.0 <= det.score <= 1.0

    @given(st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=40, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_pool_detectors_never_predict_absent_keys(self, ids):
        det = LifoDetector()
        for i in ids:
            det.observe_swap_out(key(i))
        pool = set(det.pool)
        assert all(k in pool for k in det.predict(100))
