"""Property tests for the collectives over the encrypted fabric.

Two invariants, hypothesis-driven:

* a ring all-reduce equals the plain arithmetic sum of the inputs —
  for any GPU count, vector, CC mode, and speculation config, on every
  GPU, no matter how the per-step hops interleave on the fabric;
* every bounce hop round-trips its payload bit-exactly through the
  host bounce buffer (two AES-GCM decrypt/re-encrypt boundaries), with
  a live IV audit raising on any (key, IV) reuse along the way.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cc import CcMode, build_machine
from repro.cluster.tenant import ClusterIvAudit
from repro.parallel import Communicator, LinkSpeculator

configs = st.sampled_from([
    ("nocc", 1, False),
    ("cc", 1, False),
    ("cc", 8, False),
    ("cc", 8, True),
])

vectors = st.lists(st.integers(min_value=-(2 ** 40), max_value=2 ** 40),
                   min_size=1, max_size=6)


def build(config, n_gpus):
    mode, threads, speculate = config
    machine = build_machine(
        CcMode.DISABLED if mode == "nocc" else CcMode.ENABLED,
        n_gpus=n_gpus, enc_threads=threads, dec_threads=threads,
    )
    audit = None
    if machine.interconnect is not None:
        audit = ClusterIvAudit()
        machine.interconnect.attach_audit(audit)
        if speculate:
            machine.interconnect.attach_speculator(
                LinkSpeculator(lambda: machine.sim.now)
            )
    return machine, audit


@pytest.mark.slow
@given(config=configs, n_gpus=st.integers(min_value=1, max_value=4),
       vector=vectors,
       nbytes=st.integers(min_value=1, max_value=8 << 20),
       rounds=st.integers(min_value=1, max_value=3))
@settings(max_examples=25, deadline=None)
def test_all_reduce_is_the_arithmetic_sum(config, n_gpus, vector, nbytes, rounds):
    machine, audit = build(config, n_gpus)
    comm = Communicator(machine) if n_gpus > 1 else None
    # Each GPU contributes a distinct rotation so a dropped or
    # double-counted contribution can't cancel out.
    inputs = [
        [v + gpu for v in vector] for gpu in range(n_gpus)
    ]
    expected = [sum(col) for col in zip(*inputs)]

    def main():
        for _ in range(rounds):
            if comm is None:
                yield machine.sim.timeout(0.0)
                continue
            reduced = yield comm.all_reduce(inputs, nbytes, collective="prop")
            assert all(vec == expected for vec in reduced), \
                "a GPU disagrees with the arithmetic sum"

    machine.sim.process(main())
    machine.run()
    if n_gpus > 1 and config[0] == "cc":
        # P2P moves plaintext; only the bounce bridge consumes IVs.
        assert audit.observed > 0


@pytest.mark.slow
@given(config=st.sampled_from([("cc", 1, False), ("cc", 8, True)]),
       payloads=st.lists(st.binary(min_size=1, max_size=64),
                         min_size=1, max_size=12),
       n_gpus=st.integers(min_value=2, max_value=4),
       nbytes=st.integers(min_value=1, max_value=4 << 20))
@settings(max_examples=25, deadline=None)
def test_every_hop_roundtrips_bit_exact(config, payloads, n_gpus, nbytes):
    machine, audit = build(config, n_gpus)
    fabric = machine.interconnect
    events = []
    for i, payload in enumerate(payloads):
        src = i % n_gpus
        dst = (i + 1 + i // n_gpus) % n_gpus
        if src == dst:
            dst = (dst + 1) % n_gpus
        events.append((payload, fabric.transfer(src, dst, payload, nbytes=nbytes)))
    machine.run()
    for payload, event in events:
        assert event.value == payload
    assert audit.observed == 4 * len(payloads)


@given(n_gpus=st.integers(min_value=2, max_value=4),
       vector=st.lists(st.integers(min_value=-1000, max_value=1000),
                       min_size=1, max_size=4))
@settings(max_examples=15, deadline=None)
def test_all_gather_delivers_every_block_everywhere(n_gpus, vector):
    machine, _ = build(("cc", 8, True), n_gpus)
    comm = Communicator(machine)
    inputs = [[v + gpu for v in vector] for gpu in range(n_gpus)]

    def main():
        gathered = yield comm.all_gather(inputs, nbytes=1 << 16)
        assert all(got == inputs for got in gathered)

    machine.sim.process(main())
    machine.run()
