"""Unit tests for the inter-GPU fabric (hw.interconnect)."""

import pytest

from repro.cc import CcMode, build_machine
from repro.cluster import ClusterIvAudit, IvReuseError
from repro.crypto import derive_link_session
from repro.parallel import LinkSpeculator


def run_transfer(machine, src, dst, payload, nbytes=0, tag=""):
    event = machine.interconnect.transfer(src, dst, payload, nbytes=nbytes, tag=tag)
    machine.run()
    return event.value


class TestP2P:
    def test_payload_delivered_verbatim(self):
        m = build_machine(CcMode.DISABLED, n_gpus=2)
        assert run_transfer(m, 0, 1, b"activations") == b"activations"
        assert m.interconnect.p2p_bytes == len(b"activations")
        assert m.interconnect.bounce_bytes == 0

    def test_logical_size_drives_timing_not_crypto(self):
        m = build_machine(CcMode.DISABLED, n_gpus=2)
        run_transfer(m, 0, 1, b"x", nbytes=64 * 1024 * 1024)
        assert m.sim.now >= 64 * 1024 * 1024 / m.params.p2p_bandwidth

    def test_faster_than_bounce(self):
        p2p = build_machine(CcMode.DISABLED, n_gpus=2)
        run_transfer(p2p, 0, 1, b"x", nbytes=8 * 1024 * 1024)
        cc = build_machine(CcMode.ENABLED, n_gpus=2)
        run_transfer(cc, 0, 1, b"x", nbytes=8 * 1024 * 1024)
        assert p2p.sim.now < cc.sim.now

    def test_tagged_payload_lands_in_device_memory(self):
        m = build_machine(CcMode.DISABLED, n_gpus=2)
        run_transfer(m, 0, 1, b"kv", tag="block7")
        assert m.gpus[1].read_plaintext("block7") == b"kv"


class TestBounceBridge:
    def test_roundtrip_bit_exact(self):
        m = build_machine(CcMode.ENABLED, n_gpus=2)
        payload = bytes(range(256))
        assert run_transfer(m, 0, 1, payload) == payload

    def test_serialized_strategy_recorded(self):
        m = build_machine(CcMode.ENABLED, n_gpus=2)
        run_transfer(m, 0, 1, b"a")
        (rec,) = m.interconnect.link_log
        assert (rec.mode, rec.strategy) == ("bounce", "serialized")

    def test_two_directions_are_distinct_links(self):
        m = build_machine(CcMode.ENABLED, n_gpus=2)
        run_transfer(m, 0, 1, b"fwd")
        run_transfer(m, 1, 0, b"bwd")
        labels = {link.label for link in m.interconnect.links()}
        assert labels == {"0->1", "1->0"}

    def test_link_keys_pairwise_distinct_and_off_session_key(self):
        m = build_machine(CcMode.ENABLED, n_gpus=4)
        for dst in (1, 2, 3):
            run_transfer(m, 0, dst, b"x")
        keys = set()
        for link in m.interconnect.links():
            up = derive_link_session(m.session.key, f"link:{link.label}:up")
            down = derive_link_session(m.session.key, f"link:{link.label}:down")
            keys.update({up.key, down.key})
        assert len(keys) == 6  # 3 links x 2 legs, no collisions
        assert m.session.key not in keys

    def test_same_gpu_transfer_rejected(self):
        m = build_machine(CcMode.ENABLED, n_gpus=2)
        with pytest.raises(ValueError):
            m.interconnect.transfer(0, 0, b"x")

    def test_out_of_range_gpu_rejected(self):
        m = build_machine(CcMode.ENABLED, n_gpus=2)
        with pytest.raises(ValueError):
            m.interconnect.transfer(0, 2, b"x")


class TestIvAudit:
    def test_every_hop_feeds_four_lanes(self):
        m = build_machine(CcMode.ENABLED, n_gpus=2)
        audit = ClusterIvAudit()
        m.interconnect.attach_audit(audit)
        run_transfer(m, 0, 1, b"a")
        # Up encrypt + up decrypt + down encrypt + down decrypt.
        assert audit.observed == 4
        assert audit.keys_seen() == 4

    def test_lanes_carry_link_labels(self):
        m = build_machine(CcMode.ENABLED, n_gpus=2)
        audit = ClusterIvAudit()
        m.interconnect.attach_audit(audit)
        run_transfer(m, 0, 1, b"a")
        streams = {stream for _, stream in audit.lanes()}
        assert any("link.0->1.up" in s for s in streams)
        assert any("link.0->1.down" in s for s in streams)

    def test_lanes_monotone_across_hops(self):
        m = build_machine(CcMode.ENABLED, n_gpus=2)
        audit = ClusterIvAudit()
        m.interconnect.attach_audit(audit)
        for i in range(5):
            run_transfer(m, 0, 1, bytes([i]))
        assert audit.observed == 20
        # Each lane's last IV advanced strictly (no lane stuck or reset).
        assert all(iv >= 5 for iv in audit.lanes().values())

    def test_audit_attached_before_first_link_still_covers_it(self):
        m = build_machine(CcMode.ENABLED, n_gpus=2)
        audit = ClusterIvAudit()
        m.interconnect.attach_audit(audit)  # no links derived yet
        run_transfer(m, 0, 1, b"late-link")
        assert audit.observed > 0

    def test_replayed_iv_trips_the_audit(self):
        # The failing case: feed the audit a lane, then replay an IV on
        # it, exactly what a desynchronized or rolled-back link would do.
        m = build_machine(CcMode.ENABLED, n_gpus=2)
        audit = ClusterIvAudit()
        m.interconnect.attach_audit(audit)
        run_transfer(m, 0, 1, b"a")
        link = m.interconnect.link(0, 1)
        key = link.gpu_up.key
        stream = link.gpu_up.tx_iv.name
        last = audit.lanes()[(ClusterIvAudit.fingerprint(key), stream)]
        with pytest.raises(IvReuseError):
            audit.observe(key, stream, last)


class TestSpeculation:
    def _speculated(self, n_hops, nbytes=1 << 20):
        m = build_machine(CcMode.ENABLED, n_gpus=2, enc_threads=8, dec_threads=8)
        spec = LinkSpeculator(lambda: m.sim.now)
        m.interconnect.attach_speculator(spec)
        for i in range(n_hops):
            run_transfer(m, 0, 1, bytes([i % 256]), nbytes=nbytes)
        return m, spec

    def test_repetitive_schedule_converges_to_hits(self):
        m, spec = self._speculated(12)
        strategies = [r.strategy for r in m.interconnect.link_log]
        assert strategies[-1] == "staged"
        assert m.interconnect.hit_rate() > 0.5

    def test_miss_then_hit_roundtrips_and_stays_monotone(self):
        m, spec = self._speculated(12)
        audit = ClusterIvAudit()
        m.interconnect.attach_audit(audit)
        payload = b"after-warmup"
        assert run_transfer(m, 0, 1, payload, nbytes=1 << 20) == payload
        assert audit.observed == 4

    def test_staged_hop_faster_than_serialized(self):
        serial = build_machine(CcMode.ENABLED, n_gpus=2, enc_threads=8, dec_threads=8)
        for i in range(12):
            run_transfer(serial, 0, 1, b"x", nbytes=1 << 20)
        t_serial = serial.sim.now

        staged, _ = self._speculated(12)
        assert staged.sim.now < t_serial

    def test_hit_rate_zero_without_speculator(self):
        m = build_machine(CcMode.ENABLED, n_gpus=2)
        run_transfer(m, 0, 1, b"x")
        assert m.interconnect.hit_rate() == 0.0


class TestPayloadTiering:
    """Bulk payloads over the fabric with payload tiering active."""

    PAYLOAD = bytes(range(256)) * 16  # 4 KiB, far above the threshold

    def tiered(self):
        from repro import fastpath

        return fastpath.use_profile("fast", tier_threshold=256)

    def test_bulk_roundtrip_bit_exact(self):
        with self.tiered():
            m = build_machine(CcMode.ENABLED, n_gpus=2)
            assert run_transfer(m, 0, 1, self.PAYLOAD) == self.PAYLOAD

    def test_stage_tiling_survives_tiering(self):
        # The sum(stages) == wire-latency invariant must hold when the
        # functional cipher only touched a 45-byte digest.
        with self.tiered():
            m = build_machine(CcMode.ENABLED, n_gpus=2)
            m.telemetry.enabled = True
            run_transfer(m, 0, 1, self.PAYLOAD, nbytes=1 << 20)
            (record,) = [r for r in m.telemetry.requests if r.direction == "link"]
            total = sum(end - start for _, start, end in record.stages)
            assert total == pytest.approx(record.complete_time - record.submit_time)

    def test_timing_is_driven_by_logical_size_not_payload(self):
        # Same logical transfer, tiny vs bulk functional payload:
        # simulated completion time must be bit-identical.
        with self.tiered():
            small = build_machine(CcMode.ENABLED, n_gpus=2)
            run_transfer(small, 0, 1, b"x", nbytes=1 << 20)
            big = build_machine(CcMode.ENABLED, n_gpus=2)
            run_transfer(big, 0, 1, self.PAYLOAD, nbytes=1 << 20)
            assert small.sim.now == big.sim.now

    def test_tiered_hop_still_feeds_four_audit_lanes(self):
        # One IV per leg per message, exactly as with bulk encryption.
        with self.tiered():
            m = build_machine(CcMode.ENABLED, n_gpus=2)
            audit = ClusterIvAudit()
            m.interconnect.attach_audit(audit)
            for i in range(3):
                run_transfer(m, 0, 1, self.PAYLOAD)
            assert audit.observed == 12
            assert all(iv >= 3 for iv in audit.lanes().values())


class TestTelemetry:
    def test_link_events_and_stage_tiling(self):
        m = build_machine(CcMode.ENABLED, n_gpus=2)
        m.telemetry.enabled = True
        run_transfer(m, 0, 1, b"x", nbytes=1 << 20)
        events = [e for e in m.telemetry.events if type(e).__name__ == "LinkEvent"]
        assert len(events) == 1
        assert events[0].mode == "bounce"
        (record,) = [r for r in m.telemetry.requests if r.direction == "link"]
        # Recorded stages tile the hop: their spans sum to its latency.
        total = sum(end - start for _, start, end in record.stages)
        assert total == pytest.approx(record.complete_time - record.submit_time)

    def test_counters_flow_without_recording(self):
        m = build_machine(CcMode.ENABLED, n_gpus=2)
        run_transfer(m, 0, 1, b"x")
        assert m.metrics.counters["interconnect.hops"].value == 1
