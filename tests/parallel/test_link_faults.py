"""Link storms: the interconnect under the fault plane.

A link storm forces mispredictions (plus jitter and drops) on the
fabric while a TP decode is running. The core assertions mirror the
paper's safety argument, applied per link: whatever the storm does,
no (key, IV) pair is ever reused, every collective completes with the
correct arithmetic result, and the degradation controller parks
speculation while the storm rages.
"""

import pytest

from repro.cc import CcMode, build_machine
from repro.cluster.tenant import ClusterIvAudit
from repro.faults import FaultInjector, FaultPlan, PipelineMode
from repro.models import OPT_13B
from repro.parallel import LinkSpeculator, TensorParallelEngine


def storm_run(rate, start=0.0, stop=None, tokens=3, warmup=8):
    injector = FaultInjector(FaultPlan.link_storm(rate, start=start, stop=stop),
                             seed=23)
    machine = build_machine(CcMode.ENABLED, n_gpus=2, enc_threads=8,
                            dec_threads=8, faults=injector)
    speculator = LinkSpeculator(lambda: machine.sim.now,
                                faults=injector, warmup=warmup)
    machine.interconnect.attach_speculator(speculator)
    audit = ClusterIvAudit()
    machine.interconnect.attach_audit(audit)
    engine = TensorParallelEngine(machine, OPT_13B, batch=16)
    result = engine.run(output_tokens=tokens)
    return machine, speculator, audit, injector, result


class TestLinkStorm:
    def test_storm_completes_with_zero_iv_reuse(self):
        # The audit raises IvReuseError on its own if any link lane
        # replays a counter; reaching the assertions below means the
        # full run survived with every stream monotone.
        machine, speculator, audit, injector, result = storm_run(0.8)
        assert result.tokens == 16 * 3
        assert audit.observed == 4 * result.hops
        assert injector.injected_total > 0

    def test_storm_parks_speculation(self):
        machine, speculator, audit, injector, result = storm_run(0.9)
        controller = speculator.controller
        entered = {mode for _, _, mode in controller.transitions}
        assert PipelineMode.DEGRADED.value in entered
        assert speculator.parked > 0

    def test_speculation_restored_after_the_storm(self):
        # Storm only in the first slice of the run: the controller must
        # degrade during it and probe its way back to speculative.
        _, clean_spec, _, _, clean = storm_run(0.0, tokens=4)
        t0 = clean.elapsed_s
        machine, speculator, audit, injector, result = storm_run(
            0.9, start=0.0, stop=0.25 * t0, tokens=4,
        )
        controller = speculator.controller
        entered = {mode for _, _, mode in controller.transitions}
        assert PipelineMode.DEGRADED.value in entered
        assert controller.mode is PipelineMode.SPECULATIVE
        assert result.tokens == clean.tokens

    def test_drops_exercise_the_replay_path(self):
        machine, speculator, audit, injector, result = storm_run(0.8)
        fabric = machine.interconnect
        assert fabric.replays > 0
        assert result.tokens == 16 * 3

    def test_storm_slower_than_clean_but_correct(self):
        _, _, _, _, clean = storm_run(0.0)
        _, _, _, _, stormy = storm_run(0.8)
        assert stormy.elapsed_s > clean.elapsed_s
        # Same reduction arithmetic regardless of the storm.
        assert stormy.checksum == clean.checksum

    def test_interconnect_domain_isolated_from_pcie(self):
        injector = FaultInjector(FaultPlan.link_storm(0.8), seed=23)
        machine = build_machine(CcMode.ENABLED, n_gpus=2, faults=injector)
        machine.interconnect.transfer(0, 1, b"x", nbytes=1 << 20)
        machine.run()
        fired = set(injector.counts)
        assert not any(action.startswith("pcie") for action in fired)
