"""Tests for the TP and PP engines (repro.parallel.tp / .pp)."""

import pytest

from repro.cc import CcMode, build_machine
from repro.models import OPT_13B
from repro.parallel import (
    LinkSpeculator,
    PipelineParallelEngine,
    TensorParallelEngine,
)


def tp_run(mode, n_gpus, threads=1, speculate=False, batch=16, tokens=2):
    machine = build_machine(
        CcMode.DISABLED if mode == "nocc" else CcMode.ENABLED,
        n_gpus=n_gpus, enc_threads=threads, dec_threads=threads,
    )
    if speculate and machine.interconnect is not None:
        machine.interconnect.attach_speculator(
            LinkSpeculator(lambda: machine.sim.now)
        )
    engine = TensorParallelEngine(machine, OPT_13B, batch=batch)
    return engine.run(output_tokens=tokens)


def pp_run(mode, n_gpus, schedule="gpipe", train=False, threads=1, speculate=False):
    machine = build_machine(
        CcMode.DISABLED if mode == "nocc" else CcMode.ENABLED,
        n_gpus=n_gpus, enc_threads=threads, dec_threads=threads,
    )
    if speculate and machine.interconnect is not None:
        machine.interconnect.attach_speculator(
            LinkSpeculator(lambda: machine.sim.now)
        )
    engine = PipelineParallelEngine(
        machine, OPT_13B, microbatches=4, microbatch_tokens=64, schedule=schedule,
    )
    return engine.run_finetune_step() if train else engine.run_inference()


class TestTensorParallel:
    def test_single_gpu_needs_no_fabric(self):
        res = tp_run("cc", 1)
        assert res.hops == 0 and res.tokens > 0

    def test_tokens_scale_with_batch_and_steps(self):
        res = tp_run("nocc", 2, batch=16, tokens=3)
        assert res.tokens == 16 * 3

    def test_hop_count_matches_ring_schedule(self):
        n, tokens = 4, 2
        res = tp_run("nocc", n, tokens=tokens)
        # 2 all-reduces/layer, each 2(N-1) steps of N concurrent hops.
        assert res.hops == tokens * OPT_13B.n_layers * 2 * 2 * (n - 1) * n

    def test_multi_gpu_beats_single_without_cc(self):
        assert tp_run("nocc", 4).throughput > tp_run("nocc", 1).throughput

    def test_cc_collapses_below_no_cc(self):
        assert tp_run("cc", 2).throughput < tp_run("nocc", 2).throughput

    def test_speculation_recovers_most_of_the_gap(self):
        nocc = tp_run("nocc", 2, batch=64)
        cc = tp_run("cc", 2, batch=64)
        pipe = tp_run("cc", 2, threads=8, speculate=True, batch=64)
        gap = nocc.throughput - cc.throughput
        assert gap > 0
        assert (pipe.throughput - cc.throughput) / gap >= 0.5
        assert pipe.spec_hit_rate > 0.9

    def test_checksum_identical_across_systems(self):
        # The reduction's functional result is system-independent: only
        # the timing differs between P2P, serialized, and staged.
        sums = {tp_run(m, 2, threads=t, speculate=s).checksum
                for m, t, s in (("nocc", 1, False), ("cc", 1, False), ("cc", 8, True))}
        assert len(sums) == 1


class TestPipelineParallel:
    def test_inference_processes_every_microbatch(self):
        res = pp_run("nocc", 2)
        assert res.tokens == 4 * 64
        assert res.hops == 4  # one boundary, one hop per microbatch

    def test_training_ships_gradients_back(self):
        res = pp_run("nocc", 3, train=True)
        # fwd: 2 boundaries x 4 mb; bwd: the same in reverse.
        assert res.hops == 2 * 2 * 4

    def test_1f1b_no_slower_than_gpipe(self):
        gpipe = pp_run("nocc", 4, schedule="gpipe", train=True)
        ofob = pp_run("nocc", 4, schedule="1f1b", train=True)
        assert ofob.elapsed_s <= gpipe.elapsed_s * 1.001

    def test_cc_overhead_mild_relative_to_tp(self):
        # PP ships one activation per microbatch per boundary — CC
        # hurts, but nothing like the TP collapse.
        nocc = pp_run("nocc", 4)
        cc = pp_run("cc", 4)
        assert cc.throughput < nocc.throughput
        assert cc.throughput > 0.5 * nocc.throughput

    def test_bad_schedule_rejected(self):
        machine = build_machine(CcMode.DISABLED, n_gpus=2)
        with pytest.raises(ValueError):
            PipelineParallelEngine(machine, OPT_13B, schedule="interleaved")


class TestDeterminism:
    def test_same_config_same_result(self):
        a = tp_run("cc", 2, threads=8, speculate=True)
        b = tp_run("cc", 2, threads=8, speculate=True)
        assert (a.checksum, a.elapsed_s, a.hops) == (b.checksum, b.elapsed_s, b.hops)

    def test_pp_same_config_same_result(self):
        a = pp_run("cc", 3, schedule="1f1b", train=True, threads=8, speculate=True)
        b = pp_run("cc", 3, schedule="1f1b", train=True, threads=8, speculate=True)
        assert (a.checksum, a.elapsed_s) == (b.checksum, b.elapsed_s)
