"""ZeRO-Offload full fine-tuning tests: read-write weight streaming."""

import pytest

from repro.cc import CcMode, CudaContext, build_machine
from repro.core import PipeLLMRuntime
from repro.models import OPT_13B
from repro.serving import ZeroOffloadConfig, ZeroOffloadEngine
from repro.sim import SeededRng
from repro.workloads import ultrachat_batches

RESIDENT = 30
STEPS = 3


def run(system, enc=8, dec=8):
    if system == "w/o CC":
        machine = build_machine(CcMode.DISABLED)
        runtime = CudaContext(machine)
    else:
        machine = build_machine(CcMode.ENABLED, enc_threads=enc, dec_threads=dec)
        runtime = CudaContext(machine) if system == "CC" else PipeLLMRuntime(machine)
    batches = ultrachat_batches(STEPS, 16, SeededRng(7))
    config = ZeroOffloadConfig(OPT_13B, batches, resident_layers=RESIDENT)
    engine = ZeroOffloadEngine(machine, runtime, config)
    result = engine.run()
    assert machine.gpu.auth_failures == 0
    return result, machine, runtime, engine


class TestStructure:
    def test_offloaded_count(self):
        result, _, _, _ = run("w/o CC")
        assert result.offloaded_layers == OPT_13B.n_layers - RESIDENT

    def test_swap_ins_fwd_and_bwd(self):
        result, _, _, engine = run("w/o CC")
        assert engine.swap_in_count == 2 * result.offloaded_layers * STEPS

    def test_validation(self):
        machine = build_machine(CcMode.DISABLED)
        with pytest.raises(ValueError):
            ZeroOffloadEngine(machine, CudaContext(machine), ZeroOffloadConfig(OPT_13B, []))


class TestOptimizerWrites:
    def test_gpu_receives_updated_weights(self):
        """Step t's upload must carry the optimizer's step t-1 output —
        never a stale speculatively encrypted version."""
        _, machine, _, engine = run("PipeLLM")
        for layer in engine.offloaded:
            # The last upload happened during the final step, carrying
            # the previous step's update.
            assert machine.gpu.read_plaintext(f"opt-13b.zero.w.{layer}") == (
                engine._weight_payload(layer, STEPS - 2)
            )

    def test_writes_invalidate_staged_ciphertext(self):
        _, _, runtime, _ = run("PipeLLM")
        # Every optimizer step rewrites every offloaded weight buffer.
        assert runtime.pipeline.invalidated_by_fault >= 1

    def test_gradients_arrive_on_host(self):
        _, machine, _, engine = run("w/o CC")
        for layer in engine.offloaded:
            grad = machine.host_memory.read(engine._grads[layer].addr)
            assert grad == f"g-L{layer}-s{STEPS - 1}".encode()


class TestOrdering:
    def test_pipellm_recovers_cc_loss(self):
        base, _, _, _ = run("w/o CC")
        cc, _, _, _ = run("CC")
        pipe, _, _, _ = run("PipeLLM")
        assert cc.throughput < base.throughput
        assert pipe.throughput > cc.throughput
        # Read-write streams cap the benefit (one mandatory re-encrypt
        # per layer per step) but most of the gap must close.
        gap_cc = base.throughput - cc.throughput
        gap_pipe = base.throughput - pipe.throughput
        assert gap_pipe < 0.5 * gap_cc
