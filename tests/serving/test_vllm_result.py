"""VllmResult metric tests."""

import pytest

from repro.serving import VllmResult


def make(latencies):
    return VllmResult(
        normalized_latencies=list(latencies),
        elapsed=10.0,
        swap_out_count=0,
        swap_in_count=0,
        finished=len(latencies),
    )


class TestMetrics:
    def test_mean(self):
        assert make([0.1, 0.3]).mean_normalized_latency == pytest.approx(0.2)

    def test_empty_mean(self):
        assert make([]).mean_normalized_latency == 0.0

    def test_percentiles(self):
        result = make([0.1, 0.2, 0.3, 0.4, 0.5])
        assert result.latency_percentile(0) == pytest.approx(0.1)
        assert result.latency_percentile(50) == pytest.approx(0.3)
        assert result.latency_percentile(100) == pytest.approx(0.5)

    def test_p90_above_mean_for_skewed(self):
        result = make([0.1] * 8 + [1.0, 1.0])
        assert result.latency_percentile(90) > result.mean_normalized_latency
