"""Layer-wise KV swapping tests (Figure 5's FIFO pattern, end to end)."""

import pytest

from repro.cc import CcMode, CudaContext, build_machine
from repro.core import PipeLLMRuntime
from repro.core.classify import SwapClass
from repro.models import OPT_30B
from repro.serving import LayerwiseConfig, LayerwiseKvEngine
from repro.workloads import SyntheticShape

SHAPE = SyntheticShape(192, 4)
BATCH = 256


def run(system, enc=8, dec=8):
    if system == "w/o CC":
        machine = build_machine(CcMode.DISABLED)
        runtime = CudaContext(machine)
    else:
        machine = build_machine(CcMode.ENABLED, enc_threads=enc, dec_threads=dec)
        runtime = CudaContext(machine) if system == "CC" else PipeLLMRuntime(machine)
    config = LayerwiseConfig(OPT_30B, SHAPE, batch_size=BATCH)
    engine = LayerwiseKvEngine(machine, runtime, config)
    result = engine.run()
    assert machine.gpu.auth_failures == 0
    return result, machine, runtime, engine


class TestBudgeting:
    def test_partial_residency(self):
        result, machine, _, engine = run("w/o CC")
        assert 0 < result.streamed_layers < OPT_30B.n_layers
        assert engine.kv_bytes > 0

    def test_no_streaming_when_kv_fits(self):
        machine = build_machine(CcMode.DISABLED)
        config = LayerwiseConfig(OPT_30B, SyntheticShape(16, 2), batch_size=8)
        engine = LayerwiseKvEngine(machine, CudaContext(machine), config)
        result = engine.run()
        assert result.streamed_layers == 0
        assert result.swap_in_count == 0


class TestFifoPattern:
    def test_swap_ins_counted(self):
        result, _, _, _ = run("w/o CC")
        assert result.swap_in_count == result.streamed_layers * SHAPE.output_len

    def test_fifo_hypothesis_scores_high(self):
        _, _, runtime, _ = run("PipeLLM")
        scores = runtime.predictor.scores()
        # The layer-order stream is both FIFO (w.r.t. write-backs) and
        # periodic; either hypothesis may lead, LIFO must not.
        assert max(scores["kv_cache.fifo"], scores["kv_cache.repetitive"]) > 0.9
        assert scores["kv_cache.lifo"] < 0.5

    def test_steady_state_hits(self):
        _, _, runtime, _ = run("PipeLLM")
        stats = runtime.stats()
        # Cold step misses everything; later steps hit.
        expected_cold = stats["swap_requests"] / SHAPE.output_len
        assert stats["misses"] <= expected_cold + 2


class TestRewriteCorrectness:
    def test_gpu_holds_latest_kv_version(self):
        _, machine, _, engine = run("PipeLLM")
        last_step = SHAPE.output_len - 1
        for layer in engine.streamed:
            assert machine.gpu.read_plaintext(f"kv.layer.{layer}") == engine._payload(
                layer, last_step
            )

    def test_hits_carry_rewritten_content(self):
        """Staged swap-ins served real hits AND the delivered bytes were
        the post-write-back versions — staleness never shipped even
        though every region is rewritten every step (the runtime stages
        only after the write-back's decrypt lands, and the d2h-overlap
        invalidation covers the remaining window)."""
        _, machine, runtime, engine = run("PipeLLM")
        assert runtime.stats()["hits"] > 0
        last_step = SHAPE.output_len - 1
        for layer in engine.streamed:
            assert machine.gpu.read_plaintext(f"kv.layer.{layer}") == engine._payload(
                layer, last_step
            )


class TestOrdering:
    def test_cc_catastrophic_pipellm_recovers(self):
        base, _, _, _ = run("w/o CC")
        cc, _, _, _ = run("CC")
        pipe, _, _, _ = run("PipeLLM")
        assert 1 - cc.throughput / base.throughput > 0.85
        assert cc.throughput < pipe.throughput < base.throughput
