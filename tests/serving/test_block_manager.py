"""BlockManager accounting tests plus a hypothesis invariant."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.serving.vllm import BlockAllocationError, BlockManager


class TestBasics:
    def test_initial_state(self):
        manager = BlockManager(100)
        assert manager.free_blocks == 100
        assert manager.used_blocks == 0

    def test_allocate_free(self):
        manager = BlockManager(100)
        manager.allocate("req1", 30)
        manager.allocate("req2", 20)
        assert manager.used_blocks == 50
        assert manager.owned_by("req1") == 30
        assert manager.free_owner("req1") == 30
        assert manager.used_blocks == 20

    def test_incremental_allocation(self):
        manager = BlockManager(100)
        manager.allocate("req1", 10)
        manager.allocate("req1", 5)
        assert manager.owned_by("req1") == 15

    def test_over_allocation_rejected(self):
        manager = BlockManager(10)
        with pytest.raises(BlockAllocationError):
            manager.allocate("req1", 11)

    def test_can_allocate(self):
        manager = BlockManager(10)
        manager.allocate("a", 7)
        assert manager.can_allocate(3)
        assert not manager.can_allocate(4)

    def test_free_unknown_owner(self):
        assert BlockManager(10).free_owner("ghost") == 0

    def test_peak_tracking(self):
        manager = BlockManager(100)
        manager.allocate("a", 60)
        manager.free_owner("a")
        manager.allocate("b", 10)
        assert manager.peak_used == 60

    def test_negative_rejected(self):
        manager = BlockManager(10)
        with pytest.raises(ValueError):
            manager.allocate("a", -1)
        with pytest.raises(ValueError):
            BlockManager(-1)


class TestInvariant:
    @given(st.lists(
        st.tuples(st.sampled_from(["alloc", "free"]),
                  st.integers(min_value=0, max_value=9),
                  st.integers(min_value=0, max_value=30)),
        max_size=60,
    ))
    @settings(max_examples=50, deadline=None)
    def test_used_never_exceeds_total(self, ops):
        manager = BlockManager(100)
        for op, owner_id, count in ops:
            owner = f"req{owner_id}"
            if op == "alloc":
                if manager.can_allocate(count):
                    manager.allocate(owner, count)
            else:
                manager.free_owner(owner)
            assert 0 <= manager.used_blocks <= manager.total_blocks
            assert manager.used_blocks + manager.free_blocks == manager.total_blocks
