"""LayerwiseConfig budgeting unit tests."""

import pytest

from repro.models import OPT_13B, OPT_30B
from repro.serving import LayerwiseConfig
from repro.workloads import SyntheticShape


class TestKvSizing:
    def test_kv_layer_bytes(self):
        config = LayerwiseConfig(OPT_30B, SyntheticShape(100, 10), batch_size=64)
        expected = 64 * 110 * OPT_30B.kv_bytes_per_token_layer()
        assert config.kv_layer_bytes(110) == expected

    def test_kv_grows_with_batch(self):
        small = LayerwiseConfig(OPT_30B, SyntheticShape(100, 10), batch_size=16)
        big = LayerwiseConfig(OPT_30B, SyntheticShape(100, 10), batch_size=256)
        assert big.kv_layer_bytes(100) == 16 * small.kv_layer_bytes(100)


class TestResidency:
    GPU = 80 << 30

    def test_small_batch_all_resident(self):
        config = LayerwiseConfig(OPT_30B, SyntheticShape(16, 2), batch_size=8)
        assert config.compute_resident(self.GPU) == OPT_30B.n_layers

    def test_large_batch_partial(self):
        config = LayerwiseConfig(OPT_30B, SyntheticShape(192, 6), batch_size=256)
        resident = config.compute_resident(self.GPU)
        assert 0 < resident < OPT_30B.n_layers

    def test_huge_batch_nothing_resident(self):
        config = LayerwiseConfig(OPT_30B, SyntheticShape(1024, 64), batch_size=2048)
        assert config.compute_resident(self.GPU) == 0

    def test_smaller_model_keeps_more(self):
        shape = SyntheticShape(192, 6)
        big = LayerwiseConfig(OPT_30B, shape, batch_size=256).compute_resident(self.GPU)
        # OPT-13B has smaller weights AND smaller per-layer KV, so the
        # resident fraction is at least as large.
        small_cfg = LayerwiseConfig(OPT_13B, shape, batch_size=256)
        small = small_cfg.compute_resident(self.GPU)
        assert small / OPT_13B.n_layers >= big / OPT_30B.n_layers

    def test_explicit_override(self):
        config = LayerwiseConfig(
            OPT_30B, SyntheticShape(192, 6), batch_size=256, resident_kv_layers=5
        )
        assert config.resident_kv_layers == 5
