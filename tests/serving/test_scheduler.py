"""SequenceGroup and scheduler-state tests."""

import pytest

from repro.models import KvGeometry, OPT_30B
from repro.serving.vllm import GroupState, SchedulerState, SequenceGroup
from repro.workloads import Request


@pytest.fixture
def geometry():
    return KvGeometry(OPT_30B, block_size=16)


def group(request_id=0, arrival=0.0, prompt=32, output=64, n=2):
    return SequenceGroup(
        request=Request(request_id, arrival, prompt_len=prompt, output_len=output, parallel_n=n)
    )


class TestBlockAccounting:
    def test_initial_blocks(self, geometry):
        g = group(prompt=32, n=2)
        # 2 prompt blocks + 2 sequences × 1 block each.
        assert g.blocks_held(geometry) == 2 + 2

    def test_growth_at_block_boundary(self, geometry):
        g = group(prompt=32, n=2)
        g.generated = 16  # Both sequences exactly fill their block.
        assert g.step_block_growth(geometry) == 2  # One new block each.
        g.generated = 10
        assert g.step_block_growth(geometry) == 0

    def test_kv_bytes(self, geometry):
        g = group(prompt=32, n=2)
        assert g.kv_bytes(geometry) == g.blocks_held(geometry) * geometry.block_bytes

    def test_context_len(self, geometry):
        g = group(prompt=32)
        g.generated = 5
        assert g.context_len() == 37

    def test_done(self, geometry):
        g = group(output=10)
        g.generated = 9
        assert not g.done
        g.generated = 10
        assert g.done


class TestNormalizedLatency:
    def test_value(self):
        g = group(arrival=2.0, output=10)
        g.finish_time = 7.0
        assert g.normalized_latency() == pytest.approx(0.5)

    def test_unfinished_raises(self):
        with pytest.raises(ValueError):
            group().normalized_latency()


class TestVictimSelection:
    def test_latest_arrival_preempted(self):
        state = SchedulerState()
        early, late = group(0, arrival=1.0), group(1, arrival=5.0)
        early.generated = late.generated = 3
        state.running = [early, late]
        assert state.pick_victim() is late

    def test_prefers_groups_with_progress(self):
        state = SchedulerState()
        fresh, started = group(0, arrival=9.0), group(1, arrival=1.0)
        started.generated = 3
        state.running = [fresh, started]
        assert state.pick_victim() is started

    def test_empty_returns_none(self):
        assert SchedulerState().pick_victim() is None

    def test_running_seqs(self):
        state = SchedulerState()
        state.running = [group(0, n=2), group(1, n=6)]
        assert state.running_seqs == 8
