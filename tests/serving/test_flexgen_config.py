"""FlexGenConfig budgeting unit tests."""

import pytest

from repro.hw import GB
from repro.models import OPT_13B, OPT_30B, OPT_66B, OPT_175B_4BIT
from repro.serving import FlexGenConfig
from repro.workloads import FLEXGEN_32_128, SyntheticShape


class TestKvAccounting:
    def test_kv_bytes(self):
        config = FlexGenConfig(OPT_66B, FLEXGEN_32_128, batch_size=10, n_requests=10)
        tokens = 32 + 128
        assert config.kv_bytes() == 10 * tokens * OPT_66B.kv_bytes_per_token()

    def test_reserve_override(self):
        config = FlexGenConfig(
            OPT_66B, FLEXGEN_32_128, batch_size=10, n_requests=10,
            reserve_bytes=30 * GB,
        )
        fewer = config.resident_layers(80 * GB)
        default = FlexGenConfig(
            OPT_66B, FLEXGEN_32_128, batch_size=10, n_requests=10
        ).resident_layers(80 * GB)
        assert fewer < default or default == 0


class TestResidency:
    def test_opt66b_partial(self):
        config = FlexGenConfig(OPT_66B, SyntheticShape(32, 8), batch_size=48, n_requests=48)
        resident = config.resident_layers(80 * GB)
        assert 0 < resident < OPT_66B.n_layers

    def test_opt13b_fits_entirely(self):
        config = FlexGenConfig(OPT_13B, SyntheticShape(32, 8), batch_size=8, n_requests=8)
        assert config.resident_layers(80 * GB) == OPT_13B.n_layers

    def test_quantization_helps(self):
        shape = SyntheticShape(32, 8)
        full = FlexGenConfig(OPT_66B, shape, batch_size=48, n_requests=48)
        quant = FlexGenConfig(OPT_175B_4BIT, shape, batch_size=48, n_requests=48)
        # 175B-4bit streams a smaller byte volume per pass than 66B-fp16
        # relative to its layer count thanks to 4x smaller weights.
        frac_66b = 1 - full.resident_layers(80 * GB) / OPT_66B.n_layers
        frac_175b = 1 - quant.resident_layers(80 * GB) / OPT_175B_4BIT.n_layers
        assert frac_175b < frac_66b

    def test_bigger_batch_less_resident(self):
        shape = SyntheticShape(32, 8)
        small = FlexGenConfig(OPT_66B, shape, batch_size=16, n_requests=16)
        big = FlexGenConfig(OPT_66B, shape, batch_size=64, n_requests=64)
        assert big.resident_layers(80 * GB) <= small.resident_layers(80 * GB)

    def test_never_negative(self):
        config = FlexGenConfig(OPT_175B_4BIT, SyntheticShape(1024, 512),
                               batch_size=512, n_requests=512)
        assert config.resident_layers(80 * GB) == 0
