"""End-to-end serving-engine tests on small workloads.

Each engine runs on all three systems; the invariants checked are
conservation (every request finishes), functional content integrity
through real encryption, zero authentication failures, and the
performance ordering the paper establishes
(w/o CC ≤ PipeLLM < CC under swap pressure).
"""

import pytest

from repro.cc import CcMode, CudaContext, build_machine
from repro.core import PipeLLMConfig, PipeLLMRuntime
from repro.models import OPT_13B, OPT_30B, OPT_66B
from repro.serving import (
    FlexGenConfig,
    FlexGenEngine,
    PeftConfig,
    PeftEngine,
    VllmConfig,
    VllmEngine,
)
from repro.sim import SeededRng
from repro.workloads import ALPACA, SHAREGPT, SyntheticShape, poisson_trace, ultrachat_batches


def build(system, enc=1, dec=1):
    if system == "w/o CC":
        machine = build_machine(CcMode.DISABLED)
        return machine, CudaContext(machine)
    machine = build_machine(CcMode.ENABLED, enc_threads=enc, dec_threads=dec)
    if system == "CC":
        return machine, CudaContext(machine)
    return machine, PipeLLMRuntime(machine)


class TestFlexGen:
    SHAPE = SyntheticShape(32, 4)

    def run(self, system, enc=8, dec=2):
        machine, runtime = build(system, enc=enc, dec=dec)
        config = FlexGenConfig(OPT_66B, self.SHAPE, batch_size=16, n_requests=16)
        engine = FlexGenEngine(machine, runtime, config)
        result = engine.run()
        assert machine.gpu.auth_failures == 0
        return result, machine, runtime

    def test_offload_budgeting(self):
        _, machine, _ = self.run("w/o CC")
        config = FlexGenConfig(OPT_66B, self.SHAPE, batch_size=16, n_requests=16)
        resident = config.resident_layers(machine.params.gpu_memory_bytes)
        assert 0 < resident < OPT_66B.n_layers  # partial offload

    def test_all_tokens_generated(self):
        result, _, _ = self.run("w/o CC")
        assert result.generated_tokens == 16 * self.SHAPE.output_len

    def test_functional_weights_reach_gpu(self):
        _, machine, _ = self.run("PipeLLM")
        layer = OPT_66B.n_layers - 1
        assert machine.gpu.read_plaintext(f"opt-66b.layer.{layer}") is not None

    def test_system_ordering(self):
        base, _, _ = self.run("w/o CC")
        cc, _, _ = self.run("CC")
        pipe, _, _ = self.run("PipeLLM")
        assert cc.throughput < pipe.throughput <= base.throughput * 1.001

    def test_cc_drop_is_catastrophic(self):
        base, _, _ = self.run("w/o CC")
        cc, _, _ = self.run("CC")
        assert 1 - cc.throughput / base.throughput > 0.75

    def test_pipellm_overhead_below_paper_bound(self):
        base, _, _ = self.run("w/o CC")
        pipe, _, _ = self.run("PipeLLM")
        assert 1 - pipe.throughput / base.throughput < 0.196  # <19.6 %

    def test_deterministic(self):
        a, _, _ = self.run("PipeLLM")
        b, _, _ = self.run("PipeLLM")
        assert a.elapsed == b.elapsed

    def test_prediction_success_high(self):
        # Only 4 passes here, so the cold-start pass (all misses)
        # bounds the rate at ~75 %; longer runs approach 100 %.
        _, _, runtime = self.run("PipeLLM")
        assert runtime.stats()["success_rate"] > 0.70


class TestVllm:
    def run(self, system, rate=1.6, duration=25.0):
        machine, runtime = build(system)
        requests = poisson_trace(SHAREGPT, rate, duration, SeededRng(42), parallel_n=6)
        engine = VllmEngine(machine, runtime, VllmConfig(OPT_30B, requests))
        result = engine.run()
        assert machine.gpu.auth_failures == 0
        return result, machine, runtime, engine

    def test_all_requests_finish(self):
        result, _, _, engine = self.run("w/o CC")
        assert result.finished == len(engine.config.requests)

    def test_block_conservation(self):
        _, _, _, engine = self.run("PipeLLM")
        assert engine.blocks.used_blocks == 0  # everything released

    def test_swap_roundtrip_content(self):
        result, machine, _, engine = self.run("PipeLLM")
        assert result.swap_in_count > 0
        # Every group's KV that was swapped back in must carry the
        # deterministic bytes it was swapped out with.
        for tag, payload in machine.gpu._contents.items():
            if tag.startswith("kv.req"):
                expected = engine._rng.fork(tag).bytes(16)
                assert payload == expected

    def test_no_pressure_no_swaps(self):
        result, _, _, _ = self.run("w/o CC", rate=0.3, duration=15.0)
        assert result.swap_in_count == 0

    def test_system_ordering_under_pressure(self):
        base, _, _, _ = self.run("w/o CC")
        cc, _, _, _ = self.run("CC")
        pipe, _, _, _ = self.run("PipeLLM")
        assert base.mean_normalized_latency < pipe.mean_normalized_latency
        assert pipe.mean_normalized_latency < cc.mean_normalized_latency

    def test_latency_grows_with_rate(self):
        slow, _, _, _ = self.run("w/o CC", rate=0.5)
        fast, _, _, _ = self.run("w/o CC", rate=1.8)
        assert fast.mean_normalized_latency > slow.mean_normalized_latency

    def test_pipellm_success_rate(self):
        _, _, runtime, _ = self.run("PipeLLM")
        assert runtime.stats()["success_rate"] > 0.9

    def test_empty_requests_rejected(self):
        machine, runtime = build("w/o CC")
        with pytest.raises(ValueError):
            VllmEngine(machine, runtime, VllmConfig(OPT_30B, []))


class TestPeft:
    def run(self, system, spec=OPT_30B, batch=12, resident=36, steps=2):
        machine, runtime = build(system, enc=4, dec=1)
        batches = ultrachat_batches(steps, batch, SeededRng(7))
        engine = PeftEngine(machine, runtime, PeftConfig(spec, batches, resident_layers=resident))
        result = engine.run()
        assert machine.gpu.auth_failures == 0
        return result, machine, runtime

    def test_offloaded_layers(self):
        result, _, _ = self.run("w/o CC")
        assert result.offloaded_layers == OPT_30B.n_layers - 36

    def test_system_ordering(self):
        base, _, _ = self.run("w/o CC")
        cc, _, _ = self.run("CC")
        pipe, _, _ = self.run("PipeLLM")
        assert cc.throughput < pipe.throughput <= base.throughput * 1.001

    def test_adapter_updates_never_ship_stale(self):
        # The optimizer rewrites the adapters every step; whatever
        # speculative ciphertext existed must have been invalidated,
        # so the GPU ends up with the LAST written adapter bytes.
        _, machine, _ = self.run("PipeLLM", steps=2)
        assert machine.gpu.read_plaintext("lora.adapters") == b"adapters-b1"

    def test_opt13b_lighter_overhead(self):
        base30, _, _ = self.run("w/o CC")
        cc30, _, _ = self.run("CC")
        base13, _, _ = self.run("w/o CC", spec=OPT_13B, batch=16, resident=35)
        cc13, _, _ = self.run("CC", spec=OPT_13B, batch=16, resident=35)
        drop30 = 1 - cc30.throughput / base30.throughput
        drop13 = 1 - cc13.throughput / base13.throughput
        assert drop13 < drop30  # §3: fewer parameters, less pressure

    def test_validation(self):
        machine, runtime = build("w/o CC")
        with pytest.raises(ValueError):
            PeftEngine(machine, runtime, PeftConfig(OPT_30B, []))
