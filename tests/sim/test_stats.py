"""Unit tests for the measurement helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import Counter, LatencyStat, MetricSet, TimeSeries, mean, percentile


class TestMean:
    def test_empty(self):
        assert mean([]) == 0.0

    def test_simple(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)


class TestPercentile:
    def test_empty(self):
        assert percentile([], 50) == 0.0

    def test_single(self):
        assert percentile([7.0], 99) == 7.0

    def test_median_interpolation(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)

    def test_extremes(self):
        data = [5.0, 1.0, 3.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 5.0

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50),
           st.floats(min_value=0, max_value=100))
    def test_bounded_by_min_max(self, values, q):
        p = percentile(values, q)
        assert min(values) <= p <= max(values)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=2, max_size=30))
    def test_monotone_in_q(self, values):
        assert percentile(values, 25) <= percentile(values, 75)


class TestCounter:
    def test_add(self):
        c = Counter("x")
        c.add()
        c.add(4)
        assert c.value == 5

    def test_repr(self):
        assert "x=0" in repr(Counter("x"))


class TestLatencyStat:
    def test_summary(self):
        stat = LatencyStat("lat")
        for v in (1.0, 2.0, 3.0, 4.0):
            stat.record(v)
        summary = stat.summary()
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["max"] == 4.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyStat("lat").record(-1.0)

    def test_empty_summary(self):
        summary = LatencyStat("lat").summary()
        assert summary["count"] == 0
        assert summary["max"] == 0.0


class TestTimeSeries:
    def test_time_weighted_mean(self):
        ts = TimeSeries("depth")
        ts.record(0.0, 10.0)
        ts.record(1.0, 20.0)   # 10 for [0,1)
        ts.record(3.0, 0.0)    # 20 for [1,3)
        # mean over [0,3): (10*1 + 20*2) / 3
        assert ts.time_weighted_mean() == pytest.approx(50.0 / 3.0)

    def test_horizon_extension(self):
        ts = TimeSeries("depth")
        ts.record(0.0, 10.0)
        assert ts.time_weighted_mean(horizon=2.0) == pytest.approx(10.0)

    def test_empty(self):
        assert TimeSeries("d").time_weighted_mean() == 0.0


class TestMetricSet:
    def test_idempotent_lookup(self):
        metrics = MetricSet()
        assert metrics.counter("a") is metrics.counter("a")
        assert metrics.latency("l") is metrics.latency("l")
        assert metrics.timeseries("t") is metrics.timeseries("t")

    def test_snapshot(self):
        metrics = MetricSet()
        metrics.counter("hits").add(3)
        metrics.latency("lat").record(2.0)
        snap = metrics.snapshot()
        assert snap["hits"] == 3.0
        assert snap["lat.mean"] == pytest.approx(2.0)
        assert snap["lat.count"] == 1.0
