"""Unit tests for the measurement helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import Counter, Histogram, LatencyStat, MetricSet, TimeSeries, mean, percentile


class TestMean:
    def test_empty(self):
        assert mean([]) == 0.0

    def test_simple(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)


class TestPercentile:
    def test_empty(self):
        assert percentile([], 50) == 0.0

    def test_single(self):
        assert percentile([7.0], 99) == 7.0

    def test_median_interpolation(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)

    def test_extremes(self):
        data = [5.0, 1.0, 3.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 5.0

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)

    def test_two_samples_interior(self):
        assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)
        assert percentile([0.0, 10.0], 99) == pytest.approx(9.9)

    def test_duplicate_values(self):
        assert percentile([5.0, 5.0, 5.0], 50) == 5.0
        assert percentile([5.0, 5.0, 5.0], 99) == 5.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50),
           st.floats(min_value=0, max_value=100))
    def test_bounded_by_min_max(self, values, q):
        p = percentile(values, q)
        assert min(values) <= p <= max(values)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=2, max_size=30))
    def test_monotone_in_q(self, values):
        assert percentile(values, 25) <= percentile(values, 75)


class TestCounter:
    def test_add(self):
        c = Counter("x")
        c.add()
        c.add(4)
        assert c.value == 5

    def test_repr(self):
        assert "x=0" in repr(Counter("x"))


class TestLatencyStat:
    def test_summary(self):
        stat = LatencyStat("lat")
        for v in (1.0, 2.0, 3.0, 4.0):
            stat.record(v)
        summary = stat.summary()
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["max"] == 4.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyStat("lat").record(-1.0)

    def test_empty_summary(self):
        summary = LatencyStat("lat").summary()
        assert summary["count"] == 0
        assert summary["max"] == 0.0


class TestTimeSeries:
    def test_time_weighted_mean(self):
        ts = TimeSeries("depth")
        ts.record(0.0, 10.0)
        ts.record(1.0, 20.0)   # 10 for [0,1)
        ts.record(3.0, 0.0)    # 20 for [1,3)
        # mean over [0,3): (10*1 + 20*2) / 3
        assert ts.time_weighted_mean() == pytest.approx(50.0 / 3.0)

    def test_horizon_extension(self):
        ts = TimeSeries("depth")
        ts.record(0.0, 10.0)
        assert ts.time_weighted_mean(horizon=2.0) == pytest.approx(10.0)

    def test_horizon_truncates_tail(self):
        # Regression: a horizon earlier than the last sample used to be
        # ignored; segments past it must be clipped.
        ts = TimeSeries("depth")
        ts.record(0.0, 10.0)
        ts.record(1.0, 20.0)
        ts.record(3.0, 0.0)
        # Over [0,2): 10 for one second, 20 for one second.
        assert ts.time_weighted_mean(horizon=2.0) == pytest.approx(15.0)

    def test_horizon_at_sample_boundary(self):
        ts = TimeSeries("depth")
        ts.record(0.0, 10.0)
        ts.record(1.0, 20.0)
        ts.record(3.0, 0.0)
        assert ts.time_weighted_mean(horizon=1.0) == pytest.approx(10.0)

    def test_horizon_before_first_sample(self):
        # An empty (or inverted) window degenerates to the first value.
        ts = TimeSeries("depth")
        ts.record(5.0, 42.0)
        ts.record(7.0, 0.0)
        assert ts.time_weighted_mean(horizon=5.0) == 42.0
        assert ts.time_weighted_mean(horizon=1.0) == 42.0

    def test_empty(self):
        assert TimeSeries("d").time_weighted_mean() == 0.0


class TestHistogram:
    def test_bucketing(self):
        hist = Histogram("size", [10.0, 100.0])
        for value in (1.0, 10.0, 11.0, 250.0):
            hist.record(value)
        assert hist.bucket_counts() == {"le_10": 2, "le_100": 1, "overflow": 1}
        assert hist.total == 4
        assert hist.mean == pytest.approx((1 + 10 + 11 + 250) / 4)

    def test_bounds_sorted_and_deduped(self):
        hist = Histogram("h", [100.0, 10.0])
        assert hist.bounds == (10.0, 100.0)
        with pytest.raises(ValueError):
            Histogram("h", [5.0, 5.0])
        with pytest.raises(ValueError):
            Histogram("h", [])

    def test_empty_mean(self):
        assert Histogram("h", [1.0]).mean == 0.0


class TestMetricSet:
    def test_idempotent_lookup(self):
        metrics = MetricSet()
        assert metrics.counter("a") is metrics.counter("a")
        assert metrics.latency("l") is metrics.latency("l")
        assert metrics.timeseries("t") is metrics.timeseries("t")

    def test_snapshot(self):
        metrics = MetricSet()
        metrics.counter("hits").add(3)
        metrics.latency("lat").record(2.0)
        snap = metrics.snapshot()
        assert snap["hits"] == 3.0
        assert snap["lat.mean"] == pytest.approx(2.0)
        assert snap["lat.count"] == 1.0

    def test_snapshot_latency_percentiles(self):
        metrics = MetricSet()
        stat = metrics.latency("lat")
        for v in range(1, 101):
            stat.record(float(v))
        snap = metrics.snapshot()
        assert snap["lat.p50"] == pytest.approx(50.5)
        assert snap["lat.p99"] == pytest.approx(stat.p(99))

    def test_snapshot_histogram(self):
        metrics = MetricSet()
        hist = metrics.histogram("bytes", [10.0, 100.0])
        hist.record(5.0)
        hist.record(500.0)
        snap = metrics.snapshot()
        assert snap["bytes.count"] == 2.0
        assert snap["bytes.bucket.le_10"] == 1.0
        assert snap["bytes.bucket.overflow"] == 1.0

    def test_histogram_needs_bounds_on_first_use(self):
        metrics = MetricSet()
        with pytest.raises(ValueError):
            metrics.histogram("h")
        first = metrics.histogram("h", [1.0])
        assert metrics.histogram("h") is first
