"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Event, Interrupt, SimulationError, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestEvent:
    def test_starts_untriggered(self, sim):
        event = sim.event()
        assert not event.triggered

    def test_succeed_carries_value(self, sim):
        event = sim.event()
        event.succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_double_succeed_is_an_error(self, sim):
        event = sim.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self, sim):
        event = sim.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_fail_marks_not_ok(self, sim):
        event = sim.event()
        event.fail(ValueError("boom"))
        assert event.triggered
        assert not event.ok
        assert isinstance(event.value, ValueError)

    def test_value_before_trigger_raises(self, sim):
        event = sim.event()
        with pytest.raises(SimulationError):
            _ = event.value

    def test_callback_after_trigger_still_fires(self, sim):
        event = sim.event()
        event.succeed("x")
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        sim.run()
        assert seen == ["x"]


class TestTimeout:
    def test_advances_clock(self, sim):
        fired = []

        def proc():
            yield sim.timeout(2.5)
            fired.append(sim.now)

        sim.process(proc())
        sim.run()
        assert fired == [2.5]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_zero_delay_fires_at_now(self, sim):
        fired = []

        def proc():
            yield sim.timeout(0.0)
            fired.append(sim.now)

        sim.process(proc())
        sim.run()
        assert fired == [0.0]

    def test_timeout_value_passthrough(self, sim):
        got = []

        def proc():
            value = yield sim.timeout(1.0, value="payload")
            got.append(value)

        sim.process(proc())
        sim.run()
        assert got == ["payload"]


class TestProcess:
    def test_ordering_by_delay(self, sim):
        log = []

        def worker(name, delay):
            yield sim.timeout(delay)
            log.append(name)

        sim.process(worker("late", 2.0))
        sim.process(worker("early", 1.0))
        sim.run()
        assert log == ["early", "late"]

    def test_same_time_fifo(self, sim):
        log = []

        def worker(name):
            yield sim.timeout(1.0)
            log.append(name)

        for name in "abc":
            sim.process(worker(name))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_process_is_event(self, sim):
        def child():
            yield sim.timeout(1.0)
            return "done"

        results = []

        def parent():
            value = yield sim.process(child())
            results.append((sim.now, value))

        sim.process(parent())
        sim.run()
        assert results == [(1.0, "done")]

    def test_yielding_non_event_fails_process(self, sim):
        def bad():
            yield 42

        proc = sim.process(bad())
        sim.run()
        assert proc.triggered
        assert not proc.ok

    def test_failed_event_raises_inside_process(self, sim):
        caught = []

        def proc():
            event = sim.event()
            sim._schedule_callback(lambda: event.fail(RuntimeError("bad")))
            try:
                yield event
            except RuntimeError as exc:
                caught.append(str(exc))

        sim.process(proc())
        sim.run()
        assert caught == ["bad"]

    def test_interrupt_wakes_process(self, sim):
        log = []

        def sleeper():
            try:
                yield sim.timeout(100.0)
            except Interrupt as interrupt:
                log.append(("interrupted", sim.now, interrupt.cause))

        def interrupter(target):
            yield sim.timeout(1.0)
            target.interrupt("stop")

        target = sim.process(sleeper())
        sim.process(interrupter(target))
        sim.run()
        assert log == [("interrupted", 1.0, "stop")]

    def test_interrupt_finished_process_rejected(self, sim):
        def quick():
            yield sim.timeout(0.1)

        proc = sim.process(quick())
        sim.run()
        with pytest.raises(SimulationError):
            proc.interrupt()

    def test_unhandled_interrupt_terminates_quietly(self, sim):
        def sleeper():
            yield sim.timeout(100.0)

        def interrupter(target):
            yield sim.timeout(1.0)
            target.interrupt()

        target = sim.process(sleeper())
        sim.process(interrupter(target))
        sim.run()
        assert target.triggered

    def test_is_alive(self, sim):
        def sleeper():
            yield sim.timeout(5.0)

        proc = sim.process(sleeper())
        sim.run(until=1.0)
        assert proc.is_alive
        sim.run()
        assert not proc.is_alive


class TestConditions:
    def test_all_of_waits_for_all(self, sim):
        done = []

        def proc():
            yield sim.all_of([sim.timeout(1.0), sim.timeout(3.0), sim.timeout(2.0)])
            done.append(sim.now)

        sim.process(proc())
        sim.run()
        assert done == [3.0]

    def test_any_of_fires_on_first(self, sim):
        done = []

        def proc():
            yield sim.any_of([sim.timeout(5.0), sim.timeout(1.0)])
            done.append(sim.now)

        sim.process(proc())
        sim.run()
        assert done == [1.0]

    def test_all_of_empty_fires_immediately(self, sim):
        done = []

        def proc():
            yield sim.all_of([])
            done.append(sim.now)

        sim.process(proc())
        sim.run()
        assert done == [0.0]

    def test_all_of_with_pretriggered(self, sim):
        early = sim.event()
        early.succeed("e")
        done = []

        def proc():
            values = yield sim.all_of([early, sim.timeout(1.0, value="t")])
            done.append(values)

        sim.process(proc())
        sim.run()
        assert done == [["e", "t"]]

    def test_all_of_propagates_failure(self, sim):
        bad = sim.event()
        caught = []

        def proc():
            try:
                yield sim.all_of([bad, sim.timeout(1.0)])
            except RuntimeError:
                caught.append(True)

        sim.process(proc())
        sim._schedule_callback(lambda: bad.fail(RuntimeError("x")))
        sim.run()
        assert caught == [True]


class TestRun:
    def test_run_until_stops_clock(self, sim):
        def proc():
            yield sim.timeout(10.0)

        sim.process(proc())
        sim.run(until=5.0)
        assert sim.now == 5.0
        assert sim.peek() == 10.0

    def test_run_until_past_drain_advances_clock(self, sim):
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_peek_empty(self, sim):
        assert sim.peek() is None

    def test_determinism(self):
        def build():
            s = Simulator()
            log = []

            def worker(name, delay):
                yield s.timeout(delay)
                log.append((s.now, name))

            for i in range(20):
                s.process(worker(f"w{i}", (i * 7) % 5 + 0.5))
            s.run()
            return log

        assert build() == build()
