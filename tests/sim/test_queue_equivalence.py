"""Differential harness: fast event queue ≡ the reference heap.

:class:`repro.sim.core.Simulator` keeps the original binary-heap loop
(``queue="heap"``) selectable next to the tuned FIFO+heap drain
(``queue="fast"``). These tests execute identical adversarial
schedules — duplicate timestamps, zero-delay cascades, interrupts,
event triggering, combinators, staggered ``run(until)`` horizons — on
both implementations and demand the observed execution order be
identical, which pins the fast queue to the exact ``(when, seq)``
total order of the reference.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Interrupt, Simulator

N_EVENTS = 4

#: Delays with heavy collision mass: zero-delay cascades and repeated
#: timestamps are the orders a tuned queue is most likely to break.
delays = st.sampled_from([0.0, 0.0, 0.0, 0.5, 1.0, 1.0, 2.0])

steps = st.lists(
    st.tuples(
        st.sampled_from(
            ["wait", "trigger", "wait_event", "interrupt", "join", "all", "any"]
        ),
        delays,
        st.integers(0, 7),
    ),
    min_size=0,
    max_size=6,
)

plans = st.lists(steps, min_size=1, max_size=5)


def execute(queue_impl, plan, horizons):
    """Run ``plan`` on one queue implementation; return the event log."""
    sim = Simulator(queue=queue_impl)
    log = []
    events = [sim.event() for _ in range(N_EVENTS)]
    procs = []

    def worker(wid, worker_steps):
        for index, (op, delay, ref) in enumerate(worker_steps):
            log.append((sim.now, wid, index, op))
            if op == "wait":
                yield sim.timeout(delay)
            elif op == "trigger":
                event = events[ref % N_EVENTS]
                if not event.triggered:
                    event.succeed((wid, index))
            elif op == "wait_event":
                event = events[ref % N_EVENTS]
                # A worker may park on an event nobody ever triggers;
                # the queue then simply drains around it.
                value = yield event
                log.append((sim.now, wid, index, value))
            elif op == "interrupt":
                # Cancellation: kill another worker (or ourselves) at
                # the current timestamp.
                target = procs[ref % len(procs)]
                if target.is_alive:
                    target.interrupt((wid, index))
            elif op == "join":
                target = procs[ref % len(procs)]
                if target.is_alive:
                    try:
                        yield target
                    except Interrupt as interrupt:
                        log.append((sim.now, wid, index, interrupt.cause))
            elif op == "all":
                yield sim.all_of([sim.timeout(delay), sim.timeout(0.0)])
            elif op == "any":
                yield sim.any_of([sim.timeout(delay), sim.timeout(1.0)])
        log.append((sim.now, wid, "done"))

    for wid, worker_steps in enumerate(plan):
        procs.append(sim.process(worker(wid, worker_steps)))

    # Interrupt the first worker from outside once the clock starts,
    # through a zero-delay process (exercises stale-wakeup handling).
    def saboteur():
        yield sim.timeout(0.0)
        if procs and procs[0].is_alive:
            procs[0].interrupt("storm")
            log.append((sim.now, "saboteur"))

    sim.process(saboteur())

    for horizon in horizons:
        sim.run(until=horizon)
        log.append(("horizon", horizon, sim.now, sim.peek()))
    sim.run()
    log.append(("final", sim.now, sim.peek()))
    return log


class TestScheduleEquivalence:
    @given(plan=plans)
    @settings(max_examples=60, deadline=None)
    def test_heap_and_fast_orders_identical(self, plan):
        assert execute("heap", plan, []) == execute("fast", plan, [])

    @given(plan=plans, horizons=st.lists(delays, max_size=3).map(sorted))
    @settings(max_examples=60, deadline=None)
    def test_identical_under_staggered_horizons(self, plan, horizons):
        # run(until=...) must leave both queues in equivalent states at
        # every stop, including horizons landing exactly on busy
        # timestamps (the FIFO must be provably drained at each break).
        assert execute("heap", plan, horizons) == execute("fast", plan, horizons)


class TestQueueSelection:
    def test_default_follows_fastpath_profile(self):
        from repro import fastpath

        with fastpath.use_profile("reference"):
            assert Simulator().queue_impl == "heap"
        with fastpath.use_profile("fast"):
            assert Simulator().queue_impl == "fast"

    def test_explicit_queue_overrides_profile(self):
        from repro import fastpath

        with fastpath.use_profile("fast"):
            assert Simulator(queue="heap").queue_impl == "heap"

    def test_unknown_queue_rejected(self):
        with pytest.raises(ValueError):
            Simulator(queue="calendar")

    def test_peek_sees_fifo_entries(self):
        sim = Simulator(queue="fast")
        assert sim.peek() is None
        fired = []
        sim.process(e for e in ())  # start-up callback lands in the FIFO
        assert sim.peek() == sim.now == 0.0
        sim._schedule(2.5, fired.append, "later")
        assert sim.peek() == 0.0
        sim.run()
        assert fired == ["later"] and sim.now == 2.5
