"""Span-tracer and Gantt-rendering tests."""

import pytest

from repro.cc import CcMode, CudaContext, build_machine
from repro.sim import Simulator, SpanTracer, render_gantt


class TestSpanTracer:
    def test_record_and_busy_time(self):
        tracer = SpanTracer()
        tracer.record("gpu", "compute", 0.0, 1.0)
        tracer.record("gpu", "compute", 2.0, 2.5)
        tracer.record("enc", "job", 0.0, 3.0)
        assert tracer.busy_time("gpu") == pytest.approx(1.5)
        assert tracer.lanes() == ["gpu", "enc"]

    def test_begin_end(self):
        tracer = SpanTracer()
        tracer.begin("lane", "x", 1.0)
        tracer.end("lane", "x", 2.0)
        assert tracer.spans[0].duration == pytest.approx(1.0)

    def test_end_without_begin_ignored(self):
        tracer = SpanTracer()
        tracer.end("lane", "x", 2.0)
        assert tracer.spans == []

    def test_nested_same_key_spans(self):
        # Regression: begin/begin/end/end on one (lane, label) used to
        # overwrite the first start; now the opens stack LIFO.
        tracer = SpanTracer()
        tracer.begin("pool", "job", 0.0)
        tracer.begin("pool", "job", 1.0)
        assert tracer.open_depth("pool", "job") == 2
        tracer.end("pool", "job", 2.0)   # closes the inner (1.0) open
        tracer.end("pool", "job", 5.0)   # closes the outer (0.0) open
        assert tracer.open_depth("pool", "job") == 0
        durations = sorted(s.duration for s in tracer.spans)
        assert durations == pytest.approx([1.0, 5.0])

    def test_overlapping_spans_all_retained(self):
        tracer = SpanTracer()
        tracer.record("lane", "a", 0.0, 2.0)
        tracer.record("lane", "a", 1.0, 3.0)
        assert len(tracer.spans) == 2
        assert tracer.busy_time("lane") == pytest.approx(4.0)

    def test_zero_duration_span_allowed(self):
        tracer = SpanTracer()
        tracer.record("lane", "tick", 1.0, 1.0)
        assert tracer.spans[0].duration == 0.0

    def test_disabled_records_nothing(self):
        tracer = SpanTracer(enabled=False)
        tracer.record("gpu", "c", 0.0, 1.0)
        tracer.begin("l", "x", 0.0)
        tracer.end("l", "x", 1.0)
        assert tracer.spans == []

    def test_invalid_span_rejected(self):
        with pytest.raises(ValueError):
            SpanTracer().record("l", "x", 2.0, 1.0)


class TestRenderGantt:
    def test_empty(self):
        assert "no spans" in render_gantt(SpanTracer())

    def test_lanes_and_glyphs(self):
        tracer = SpanTracer()
        tracer.record("gpu", "compute", 0.0, 0.5)
        tracer.record("enc", "job", 0.5, 1.0)
        text = render_gantt(tracer, width=20)
        assert "gpu" in text and "enc" in text
        assert "c" in text and "j" in text

    def test_overlap_marked(self):
        tracer = SpanTracer()
        tracer.record("lane", "a", 0.0, 1.0)
        tracer.record("lane", "b", 0.0, 1.0)
        assert "#" in render_gantt(tracer, width=10)

    def test_lane_filter(self):
        tracer = SpanTracer()
        tracer.record("keep", "a", 0.0, 1.0)
        tracer.record("drop", "b", 0.0, 1.0)
        text = render_gantt(tracer, lanes=["keep"])
        assert "keep" in text and "drop" not in text

    def test_lane_prefix_filter(self):
        tracer = SpanTracer()
        tracer.record("pcie.h2d", "t", 0.0, 1.0)
        tracer.record("pcie.d2h", "t", 0.0, 1.0)
        tracer.record("gpu", "c", 0.0, 1.0)
        text = render_gantt(tracer, lane_prefix="pcie")
        assert "pcie.h2d" in text and "pcie.d2h" in text and "gpu" not in text

    def test_lane_prefix_no_match(self):
        tracer = SpanTracer()
        tracer.record("gpu", "c", 0.0, 1.0)
        assert "no matching lanes" in render_gantt(tracer, lane_prefix="pcie")

    def test_explicit_lanes_override_prefix(self):
        tracer = SpanTracer()
        tracer.record("gpu", "c", 0.0, 1.0)
        text = render_gantt(tracer, lanes=["gpu"], lane_prefix="pcie")
        assert "gpu" in text


class TestIntegration:
    def test_disabled_by_default(self):
        assert not Simulator().tracer.enabled

    def test_machine_run_records_spans_when_enabled(self):
        machine = build_machine(CcMode.ENABLED)
        machine.sim.tracer.enabled = True
        ctx = CudaContext(machine)
        region = machine.host_memory.allocate(1 << 20, "w", b"x")

        def app():
            handle = ctx.memcpy_h2d(region.chunk())
            yield handle.complete
            yield machine.gpu.compute(1e9, 1e6)

        machine.sim.process(app())
        machine.run()
        lanes = machine.sim.tracer.lanes()
        assert "gpu" in lanes
        assert any(lane.startswith("enc") for lane in lanes)
        assert "pcie.h2d.cc" in lanes
