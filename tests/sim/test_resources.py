"""Unit tests for Resource, Store, BandwidthPipe and WorkerPool."""

import pytest

from repro.sim import BandwidthPipe, Resource, Simulator, Store, WorkerPool


@pytest.fixture
def sim():
    return Simulator()


class TestResource:
    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_acquire_release(self, sim):
        res = Resource(sim, capacity=1)
        log = []

        def user(name, hold):
            yield res.acquire()
            log.append((sim.now, name, "in"))
            yield sim.timeout(hold)
            res.release()
            log.append((sim.now, name, "out"))

        sim.process(user("a", 2.0))
        sim.process(user("b", 1.0))
        sim.run()
        assert log == [
            (0.0, "a", "in"),
            (2.0, "a", "out"),
            (2.0, "b", "in"),
            (3.0, "b", "out"),
        ]

    def test_counts(self, sim):
        res = Resource(sim, capacity=2)

        def holder():
            yield res.acquire()
            yield sim.timeout(10.0)

        for _ in range(3):
            sim.process(holder())
        sim.run(until=1.0)
        assert res.in_use == 2
        assert res.queue_len == 1

    def test_release_without_acquire(self, sim):
        res = Resource(sim)
        with pytest.raises(RuntimeError):
            res.release()


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("x")
        got = []

        def getter():
            item = yield store.get()
            got.append(item)

        sim.process(getter())
        sim.run()
        assert got == ["x"]

    def test_blocking_get(self, sim):
        store = Store(sim)
        got = []

        def getter():
            item = yield store.get()
            got.append((sim.now, item))

        def putter():
            yield sim.timeout(3.0)
            store.put("late")

        sim.process(getter())
        sim.process(putter())
        sim.run()
        assert got == [(3.0, "late")]

    def test_fifo_order(self, sim):
        store = Store(sim)
        for item in (1, 2, 3):
            store.put(item)
        got = []

        def getter():
            for _ in range(3):
                got.append((yield store.get()))

        sim.process(getter())
        sim.run()
        assert got == [1, 2, 3]

    def test_drain(self, sim):
        store = Store(sim)
        store.put("a")
        store.put("b")
        assert store.drain() == ["a", "b"]
        assert len(store) == 0


class TestBandwidthPipe:
    def test_duration(self, sim):
        pipe = BandwidthPipe(sim, bandwidth=100.0, latency=1.0)
        assert pipe.duration_of(200) == pytest.approx(3.0)

    def test_single_transfer(self, sim):
        pipe = BandwidthPipe(sim, bandwidth=10.0)
        done = []

        def proc():
            yield pipe.transfer(50)
            done.append(sim.now)

        sim.process(proc())
        sim.run()
        assert done == [pytest.approx(5.0)]

    def test_serialization(self, sim):
        pipe = BandwidthPipe(sim, bandwidth=10.0)
        done = []

        def proc(name, nbytes):
            yield pipe.transfer(nbytes)
            done.append((sim.now, name))

        sim.process(proc("first", 10))
        sim.process(proc("second", 10))
        sim.run()
        assert done == [(pytest.approx(1.0), "first"), (pytest.approx(2.0), "second")]

    def test_accounting(self, sim):
        pipe = BandwidthPipe(sim, bandwidth=10.0)
        pipe.transfer(30)
        pipe.transfer(70)
        sim.run()
        assert pipe.bytes_moved == 100
        assert pipe.jobs_done == 2

    def test_negative_bytes_rejected(self, sim):
        pipe = BandwidthPipe(sim, bandwidth=10.0)
        with pytest.raises(ValueError):
            pipe.transfer(-1)

    def test_bad_bandwidth_rejected(self, sim):
        with pytest.raises(ValueError):
            BandwidthPipe(sim, bandwidth=0)


class TestWorkerPool:
    def test_single_worker_serializes(self, sim):
        pool = WorkerPool(sim, workers=1)
        done = []
        for name, service in (("a", 2.0), ("b", 1.0)):
            pool.submit(service, payload=name).add_callback(
                lambda e: done.append((sim.now, e.value))
            )
        sim.run()
        assert done == [(2.0, "a"), (3.0, "b")]

    def test_parallel_workers(self, sim):
        pool = WorkerPool(sim, workers=2)
        done = []
        for name in ("a", "b"):
            pool.submit(1.0, payload=name).add_callback(
                lambda e: done.append((sim.now, e.value))
            )
        sim.run()
        assert done == [(1.0, "a"), (1.0, "b")]

    def test_urgent_overtakes_queued(self, sim):
        pool = WorkerPool(sim, workers=1)
        done = []

        def driver():
            pool.submit(5.0, payload="slow1").add_callback(lambda e: done.append(e.value))
            yield sim.timeout(0.1)  # slow1 now in service
            pool.submit(5.0, payload="slow2").add_callback(lambda e: done.append(e.value))
            pool.submit(1.0, payload="urgent", urgent=True).add_callback(
                lambda e: done.append(e.value)
            )

        sim.process(driver())
        sim.run()
        # slow1 is already in service (no preemption); urgent jumps
        # ahead of the queued slow2.
        assert done == ["slow1", "urgent", "slow2"]

    def test_front_makes_lifo(self, sim):
        pool = WorkerPool(sim, workers=1)
        done = []

        def driver():
            pool.submit(1.0, payload="busy").add_callback(lambda e: done.append(e.value))
            yield sim.timeout(0.1)  # busy in service; next two queue
            for name in ("old", "new"):
                pool.submit(1.0, payload=name, front=True).add_callback(
                    lambda e: done.append(e.value)
                )

        sim.process(driver())
        sim.run()
        assert done == ["busy", "new", "old"]

    def test_busy_accounting(self, sim):
        pool = WorkerPool(sim, workers=1)
        pool.submit(2.0)
        pool.submit(3.0)
        sim.run()
        assert pool.busy_seconds == pytest.approx(5.0)
        assert pool.jobs_done == 2

    def test_negative_service_rejected(self, sim):
        pool = WorkerPool(sim, workers=1)
        with pytest.raises(ValueError):
            pool.submit(-0.1)

    def test_worker_count_validation(self, sim):
        with pytest.raises(ValueError):
            WorkerPool(sim, workers=0)
