"""Process-wide seed override: the CLI --seed plumbing."""

import pytest

from repro.sim import SeededRng, default_seed, set_default_seed


@pytest.fixture(autouse=True)
def clear_override():
    yield
    set_default_seed(None)


class TestSeedOverride:
    def test_fallback_without_override(self):
        assert default_seed(42) == 42

    def test_override_wins(self):
        set_default_seed(123)
        assert default_seed(42) == 123

    def test_clear_restores_fallback(self):
        set_default_seed(123)
        set_default_seed(None)
        assert default_seed(42) == 42

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            set_default_seed(-1)

    def test_override_changes_workload_streams(self):
        set_default_seed(7)
        a = SeededRng(default_seed(42)).random()
        set_default_seed(8)
        b = SeededRng(default_seed(42)).random()
        assert a != b


class TestCliSeedThreading:
    def test_cluster_runs_reproducible_with_seed(self, capsys):
        import json

        from repro.cli import main

        argv = ["cluster", "--replicas", "1", "--rate", "2", "--duration", "2",
                "--tenants", "2", "--seed", "5", "--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        set_default_seed(None)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert first == second

    def test_cluster_seed_changes_run(self, capsys):
        import json

        from repro.cli import main

        base = ["cluster", "--replicas", "1", "--rate", "4", "--duration", "2",
                "--tenants", "2", "--json"]
        assert main(base + ["--seed", "5"]) == 0
        first = json.loads(capsys.readouterr().out)
        set_default_seed(None)
        assert main(base + ["--seed", "6"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert first != second
