"""Determinism and distribution tests for SeededRng."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import SeededRng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = SeededRng(42)
        b = SeededRng(42)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_fork_is_stable(self):
        # fork() must be stable across interpreter runs — it is keyed by
        # CRC32, not by Python's salted hash().
        child = SeededRng(42).fork("workload")
        assert child.seed == SeededRng(42).fork("workload").seed

    def test_fork_labels_independent(self):
        root = SeededRng(42)
        assert root.fork("a").seed != root.fork("b").seed

    def test_fork_isolates_draws(self):
        root = SeededRng(1)
        a = root.fork("a")
        before = a.random()
        # Drawing from another fork must not perturb this one.
        root2 = SeededRng(1)
        root2.fork("b").random()
        a2 = root2.fork("a")
        assert a2.random() == before


class TestDistributions:
    def test_exponential_positive(self):
        rng = SeededRng(3)
        samples = [rng.exponential(2.0) for _ in range(100)]
        assert all(s > 0 for s in samples)

    def test_exponential_mean(self):
        rng = SeededRng(3)
        samples = [rng.exponential(4.0) for _ in range(5000)]
        assert sum(samples) / len(samples) == pytest.approx(0.25, rel=0.1)

    def test_exponential_rate_validation(self):
        with pytest.raises(ValueError):
            SeededRng(1).exponential(0.0)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_lognormal_clamped(self, seed):
        rng = SeededRng(seed)
        value = rng.lognormal_int(5.0, 1.0, low=4, high=1024)
        assert 4 <= value <= 1024

    def test_bytes_deterministic_length(self):
        rng = SeededRng(9)
        payload = rng.bytes(24)
        assert len(payload) == 24
        assert payload == SeededRng(9).bytes(24)

    def test_uniform_range(self):
        rng = SeededRng(5)
        for _ in range(50):
            assert 1.0 <= rng.uniform(1.0, 2.0) <= 2.0

    def test_shuffle_permutation(self):
        rng = SeededRng(5)
        items = list(range(20))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
