"""The serving front end over the confidential cluster.

Covers the request ledger (every offered request resolves exactly
once), the serving metrics (TTFT/TPOT into the gateway's MetricSet,
SLO attainment counters), admission-layer shedding, and the typed
``ServeEvent`` lifecycle on the telemetry bus.
"""

import math

import pytest

from repro.cluster import Cluster
from repro.core import ClusterConfig
from repro.serve import (
    LoadSpec,
    ServeFrontend,
    SloSpec,
    generate_load,
    run_serve,
)
from repro.telemetry import ServeEvent, recording

#: KV squeeze matching bench.serve: forces swap pressure at high load.
RESERVE = 55 << 30


def _config(**kw):
    base = dict(
        replicas=2, system="pipellm", policy="least-loaded",
        reserve_bytes=RESERVE, max_outstanding=12,
    )
    base.update(kw)
    return ClusterConfig(**base)


class TestAccounting:
    def test_every_offered_request_resolves(self):
        result = run_serve(_config(), LoadSpec(rate=10.0, duration=4.0))
        assert result.offered > 0
        assert result.completed + result.shed == result.offered

    def test_ledger_closes_under_overload(self):
        result = run_serve(_config(), LoadSpec(rate=120.0, duration=3.0))
        assert result.shed > 0
        assert result.completed + result.shed == result.offered
        assert sum(result.shed_by_reason.values()) == result.shed

    def test_ledger_closes_across_failover(self):
        result = run_serve(
            _config(fail_at=1.0, recover_after=2.0),
            LoadSpec(rate=8.0, duration=5.0),
        )
        assert result.failovers > 0
        assert result.completed + result.shed == result.offered
        assert result.auth_failures == 0


class TestServingMetrics:
    def test_ttft_and_tpot_recorded_per_completion(self):
        cluster = Cluster(_config())
        frontend = ServeFrontend(cluster)
        requests = generate_load(LoadSpec(rate=10.0, duration=3.0))
        result = frontend.run(requests, duration=3.0)
        ttft = cluster.gateway.metrics.latencies["serve.ttft_s"]
        assert ttft.count == result.completed
        # TPOT skips single-token completions.
        assert len(result.tpots) <= result.completed
        assert all(t > 0 for t in result.ttfts)
        assert all(t > 0 for t in result.tpots)

    def test_low_load_attains_slo(self):
        result = run_serve(
            _config(), LoadSpec(rate=4.0, duration=4.0), slo=SloSpec()
        )
        assert result.shed == 0
        assert result.attainment >= 0.95

    def test_responses_carry_stream_chunks(self):
        result = run_serve(_config(), LoadSpec(rate=4.0, duration=2.0))
        served = [r for r in result.responses if r.ok]
        assert served
        for response in served:
            assert len(response.chunks) == response.usage.completion_tokens
            indices = [c.index for c in response.chunks]
            assert indices == list(range(1, len(indices) + 1))
            times = [c.time for c in response.chunks]
            assert times == sorted(times)


class TestAdmissionIntegration:
    def test_deadline_sheds_have_responses_with_reason(self):
        result = run_serve(
            _config(), LoadSpec(rate=120.0, duration=2.0), admission="slo"
        )
        assert result.shed_by_reason.get("deadline", 0) > 0
        shed = [r for r in result.responses if not r.ok]
        assert all(r.finish_reason.startswith("shed:") for r in shed)
        # A deadline shed never produced a token.
        deadline = [r for r in shed if r.finish_reason == "shed:deadline"]
        assert all(math.isnan(r.first_token_time) for r in deadline)

    def test_fifo_policy_relies_on_gateway_shedding(self):
        result = run_serve(
            _config(), LoadSpec(rate=120.0, duration=2.0), admission="fifo"
        )
        assert result.admission == "fifo"
        # Everything shed by fifo comes from the gateway's own reasons.
        assert set(result.shed_by_reason) <= {"capacity", "timeout", "kv-budget"}


class TestServeEvents:
    def test_lifecycle_event_order_per_request(self):
        with recording():
            cluster = Cluster(_config())
            frontend = ServeFrontend(cluster)
            requests = generate_load(LoadSpec(rate=10.0, duration=3.0))
            result = frontend.run(requests, duration=3.0)
        events = [e for e in frontend.telemetry.events if isinstance(e, ServeEvent)]
        assert events
        order = {"arrive": 0, "hold": 1, "admit": 2, "first-token": 3,
                 "token": 4, "restart": 5, "complete": 6, "shed": 6}
        by_request = {}
        for event in events:
            by_request.setdefault(event.request_id, []).append(event)
        assert len(by_request) == result.offered
        for rid, stream in by_request.items():
            assert stream[0].action == "arrive"
            assert stream[-1].action in ("complete", "shed")
            times = [e.time for e in stream]
            assert times == sorted(times)
            terminal = [e for e in stream if e.action in ("complete", "shed")]
            assert len(terminal) == 1

    def test_no_events_outside_recording(self):
        cluster = Cluster(_config())
        frontend = ServeFrontend(cluster)
        frontend.run(generate_load(LoadSpec(rate=5.0, duration=1.0)), duration=1.0)
        assert frontend.telemetry.events == []


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = run_serve(_config(), LoadSpec(rate=20.0, duration=3.0))
        b = run_serve(_config(), LoadSpec(rate=20.0, duration=3.0))
        assert a.as_dict() == b.as_dict()

    def test_seed_changes_the_run(self):
        a = run_serve(_config(), LoadSpec(rate=20.0, duration=3.0, seed=1))
        b = run_serve(_config(), LoadSpec(rate=20.0, duration=3.0, seed=2))
        assert a.as_dict() != b.as_dict()
