"""Streaming-span ordering on the shared tracer.

Each request's delivery attempt is one ``stream`` span on its own
``serve.req-<id>`` lane, with closed ``token`` spans marking the
inter-token gaps. The invariants: token spans nest inside a stream
span (LIFO — the stream opens first and closes last), all times are
monotone in simulated time, and a replica crash mid-stream never
leaves an orphaned open span — the restarted attempt opens a fresh
stream span, or the request is shed cleanly.
"""

import pytest

from repro.cluster import Cluster
from repro.core import ClusterConfig
from repro.serve import LoadSpec, ServeFrontend, generate_load
from repro.telemetry import ServeEvent, recording

RESERVE = 55 << 30


def _run(rate=8.0, duration=3.0, **config_kw):
    base = dict(
        replicas=2, system="pipellm", policy="least-loaded",
        reserve_bytes=RESERVE, max_outstanding=12,
    )
    base.update(config_kw)
    with recording():
        cluster = Cluster(ClusterConfig(**base))
        frontend = ServeFrontend(cluster)
        requests = generate_load(LoadSpec(rate=rate, duration=duration))
        result = frontend.run(requests, duration=duration)
    return frontend, result


def _lanes(frontend):
    spans = {}
    for span in frontend.telemetry.tracer.spans:
        if span.lane.startswith("serve.req-"):
            spans.setdefault(span.lane, []).append(span)
    return spans


class TestStreamSpanOrdering:
    def test_streams_nest_tokens_lifo_and_monotone(self):
        frontend, result = _run()
        lanes = _lanes(frontend)
        assert len(lanes) > 0
        for lane, spans in lanes.items():
            streams = [s for s in spans if s.label == "stream"]
            tokens = [s for s in spans if s.label == "token"]
            assert streams, f"{lane} has tokens but no stream span"
            for span in spans:
                assert span.end >= span.start
            # Monotone in simulated time, tokens non-overlapping.
            tokens.sort(key=lambda s: s.start)
            for a, b in zip(tokens, tokens[1:]):
                assert a.end <= b.start + 1e-12
            # LIFO nesting: every token span lies inside a stream span
            # (opened before, closed after).
            for token in tokens:
                assert any(
                    s.start <= token.start and token.end <= s.end
                    for s in streams
                ), f"token span outside any stream span on {lane}"

    def test_no_open_spans_after_drain(self):
        frontend, _ = _run()
        tracer = frontend.telemetry.tracer
        for lane in _lanes(frontend):
            assert tracer.open_depth(lane, "stream") == 0

    def test_one_stream_span_per_completed_request_without_faults(self):
        frontend, result = _run()
        lanes = _lanes(frontend)
        completed = [r for r in result.responses if r.ok]
        assert len(lanes) == len(completed)
        for spans in lanes.values():
            assert sum(1 for s in spans if s.label == "stream") == 1


class TestCrashMidStream:
    def test_crash_restarts_or_sheds_with_no_orphaned_spans(self):
        frontend, result = _run(
            rate=8.0, duration=4.0, fail_at=0.5, recover_after=2.0
        )
        assert result.failovers > 0
        events = [e for e in frontend.telemetry.events if isinstance(e, ServeEvent)]
        restarts = [e for e in events if e.action == "restart"]
        assert restarts, "no stream restarted despite a mid-run crash"
        assert result.completed + result.shed == result.offered

        tracer = frontend.telemetry.tracer
        lanes = _lanes(frontend)
        for lane in lanes:
            assert tracer.open_depth(lane, "stream") == 0

        # A restarted request has one stream span per delivery attempt,
        # all disjoint and ordered.
        for event in restarts:
            lane = f"serve.req-{event.request_id}"
            streams = sorted(
                (s for s in lanes.get(lane, []) if s.label == "stream"),
                key=lambda s: s.start,
            )
            assert len(streams) >= 2
            for a, b in zip(streams, streams[1:]):
                assert a.end <= b.start

    def test_restarted_request_keeps_first_attempt_ttft(self):
        frontend, result = _run(
            rate=8.0, duration=4.0, fail_at=0.5, recover_after=2.0
        )
        events = [e for e in frontend.telemetry.events if isinstance(e, ServeEvent)]
        restarted = {
            e.request_id for e in events
            if e.action == "restart" and "tokens=0" not in e.detail
        }
        served = {r.request.request_id: r for r in result.responses if r.ok}
        for rid in restarted & set(served):
            first_token_events = [
                e for e in events
                if e.request_id == rid and e.action == "first-token"
            ]
            # TTFT pins the FIRST attempt's first token even though the
            # stream restarted from index 1 afterwards.
            assert served[rid].first_token_time == pytest.approx(
                first_token_events[0].time
            )
