"""OpenAI-style request/response model."""

import math

import pytest

from repro.serve import CompletionRequest, CompletionResponse, StreamChunk, Usage


def _request(**kw):
    base = dict(request_id=7, tenant="tenant-0", prompt_tokens=64, max_tokens=16)
    base.update(kw)
    return CompletionRequest(**base)


class TestCompletionRequest:
    def test_priority_follows_tier_order(self):
        assert _request(tier="interactive").priority == 0
        assert _request(tier="standard").priority == 1
        assert _request(tier="batch").priority == 2

    def test_rejects_unknown_tier(self):
        with pytest.raises(ValueError):
            _request(tier="platinum")

    def test_rejects_nonpositive_token_budgets(self):
        with pytest.raises(ValueError):
            _request(prompt_tokens=0)
        with pytest.raises(ValueError):
            _request(max_tokens=0)


class TestCompletionResponse:
    def _response(self, **kw):
        base = dict(
            request=_request(arrival_time=1.0),
            created=2.0,
            finish_reason="stop",
            usage=Usage(64, 16),
            first_token_time=1.2,
            finish_time=2.0,
        )
        base.update(kw)
        return CompletionResponse(**base)

    def test_derived_latency_metrics(self):
        response = self._response()
        assert response.ok
        assert response.ttft == pytest.approx(0.2)
        assert response.tpot == pytest.approx((2.0 - 1.2) / 15)
        assert response.latency == pytest.approx(1.0)

    def test_shed_response_has_nan_metrics(self):
        response = self._response(
            finish_reason="shed:deadline",
            first_token_time=math.nan,
            usage=Usage(64, 0),
        )
        assert not response.ok
        assert math.isnan(response.ttft)
        assert math.isnan(response.tpot)

    def test_single_token_completion_has_no_tpot(self):
        response = self._response(usage=Usage(64, 1))
        assert math.isnan(response.tpot)

    def test_wire_shape(self):
        doc = self._response().to_dict()
        assert doc["id"] == "cmpl-7"
        assert doc["object"] == "text_completion"
        assert doc["usage"]["total_tokens"] == 80
        assert doc["choices"][0]["finish_reason"] == "stop"
        assert doc["metrics"]["tier"] == "standard"

    def test_stream_chunk_wire_shape(self):
        doc = StreamChunk(request_id=7, index=3, time=1.5).to_dict()
        assert doc["object"] == "text_completion.chunk"
        assert doc["choices"][0]["token_index"] == 3
