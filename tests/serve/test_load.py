"""Trace-driven open-loop load generation."""

import pytest

from repro.serve import DEFAULT_TIER_MIX, LoadSpec, generate_load, production_rate
from repro.workloads import ALPACA_SERVE, SHAREGPT_SERVE


class TestLoadSpec:
    def test_validates_rate_duration_tenants(self):
        with pytest.raises(ValueError):
            LoadSpec(rate=0.0)
        with pytest.raises(ValueError):
            LoadSpec(duration=0.0)
        with pytest.raises(ValueError):
            LoadSpec(tenants=0)

    def test_validates_tier_mix(self):
        with pytest.raises(ValueError):
            LoadSpec(tier_mix=(("interactive", 0.5),))  # sums to 0.5
        with pytest.raises(ValueError):
            LoadSpec(tier_mix=(("gold", 1.0),))


class TestProductionRate:
    def test_users_over_think_time(self):
        # 800 concurrent users at 100 s think time offer 8 req/s.
        assert production_rate(800, 100.0) == pytest.approx(8.0)

    def test_rejects_degenerate_populations(self):
        with pytest.raises(ValueError):
            production_rate(0, 10.0)
        with pytest.raises(ValueError):
            production_rate(10, 0.0)


class TestGenerateLoad:
    def test_deterministic_under_seed(self):
        spec = LoadSpec(rate=20.0, duration=5.0, seed=9)
        assert generate_load(spec) == generate_load(spec)

    def test_seed_argument_changes_the_draw(self):
        spec = LoadSpec(rate=20.0, duration=5.0, seed=9)
        assert generate_load(spec) != generate_load(spec, seed=10)

    def test_arrivals_ordered_within_window(self):
        requests = generate_load(LoadSpec(rate=30.0, duration=4.0))
        assert len(requests) > 0
        times = [r.arrival_time for r in requests]
        assert times == sorted(times)
        assert all(0.0 <= t < 4.0 for t in times)

    def test_tier_mix_roughly_respected(self):
        requests = generate_load(LoadSpec(rate=200.0, duration=10.0))
        fractions = {
            tier: sum(1 for r in requests if r.tier == tier) / len(requests)
            for tier, _ in DEFAULT_TIER_MIX
        }
        for tier, weight in DEFAULT_TIER_MIX:
            assert fractions[tier] == pytest.approx(weight, abs=0.08)

    def test_tenants_within_population(self):
        requests = generate_load(LoadSpec(rate=50.0, duration=4.0, tenants=3))
        tenants = {r.tenant for r in requests}
        assert tenants <= {f"tenant-{i}" for i in range(3)}
        assert len(tenants) > 1

    def test_trace_presets_shape_the_lengths(self):
        long_prompts = generate_load(
            LoadSpec(trace=SHAREGPT_SERVE, rate=100.0, duration=10.0)
        )
        short_prompts = generate_load(
            LoadSpec(trace=ALPACA_SERVE, rate=100.0, duration=10.0)
        )
        mean_long = sum(r.prompt_tokens for r in long_prompts) / len(long_prompts)
        mean_short = sum(r.prompt_tokens for r in short_prompts) / len(short_prompts)
        assert mean_long > 3 * mean_short
