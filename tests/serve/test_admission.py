"""SLO-aware admission control: state machine, tiers, deadlines."""

import math

import pytest

from repro.serve import (
    CompletionRequest,
    FifoAdmission,
    SloAdmission,
    SloSpec,
    make_admission,
)


def _request(rid, tier="standard", arrival=0.0):
    return CompletionRequest(
        request_id=rid, tenant="t", prompt_tokens=32, max_tokens=8,
        arrival_time=arrival, tier=tier,
    )


class TestSloSpec:
    def test_budgets_scale_with_tier_slack(self):
        slo = SloSpec(ttft_target_s=0.5, tpot_target_s=0.05)
        assert slo.ttft_budget("interactive") == pytest.approx(0.5)
        assert slo.ttft_budget("standard") == pytest.approx(1.0)
        assert slo.ttft_budget("batch") == pytest.approx(2.0)
        assert slo.tpot_budget("batch") == pytest.approx(0.2)

    def test_attained_is_nan_safe(self):
        slo = SloSpec()
        # nan TPOT (single-token completion): only TTFT applies.
        assert slo.attained("standard", 0.1, math.nan)
        # nan TTFT (never served) is never attained.
        assert not slo.attained("standard", math.nan, 0.01)
        assert not slo.attained("interactive", 0.6, 0.01)
        assert not slo.attained("interactive", 0.1, 0.06)

    def test_rejects_nonpositive_targets(self):
        with pytest.raises(ValueError):
            SloSpec(ttft_target_s=0.0)
        with pytest.raises(ValueError):
            SloSpec(deadline_factor=0.0)


class TestFifoAdmission:
    def test_admits_everything(self):
        policy = FifoAdmission()
        for rid in range(100):
            assert policy.offer(_request(rid), now=0.0) == "admit"
        assert policy.held_count == 0


class TestSloAdmission:
    def _policy(self, budget=2, hold_capacity=3):
        return SloAdmission(SloSpec(), budget=budget, hold_capacity=hold_capacity)

    def test_admits_up_to_budget_then_holds(self):
        policy = self._policy(budget=2)
        assert policy.offer(_request(0), 0.0) == "admit"
        assert policy.offer(_request(1), 0.0) == "admit"
        assert policy.offer(_request(2), 0.0) == "hold"
        assert policy.held_count == 1

    def test_release_prefers_better_tier_over_arrival(self):
        policy = self._policy(budget=1)
        policy.offer(_request(0), 0.0)  # occupies the budget
        policy.offer(_request(1, tier="batch", arrival=0.0), 0.0)
        policy.offer(_request(2, tier="interactive", arrival=0.1), 0.1)
        policy.on_done(_request(0))
        released = policy.release(0.2)
        assert [r.request_id for r in released] == [2]

    def test_full_hold_queue_sheds_worst_newcomer(self):
        policy = self._policy(budget=1, hold_capacity=1)
        policy.offer(_request(0), 0.0)
        assert policy.offer(_request(1, tier="interactive"), 0.0) == "hold"
        # A batch newcomer is no better than the held interactive one.
        assert policy.offer(_request(2, tier="batch"), 0.0) == "shed:overload"
        assert policy.held_count == 1

    def test_full_hold_queue_displaces_worst_for_better_newcomer(self):
        policy = self._policy(budget=1, hold_capacity=1)
        policy.offer(_request(0), 0.0)
        assert policy.offer(_request(1, tier="batch"), 0.0) == "hold"
        assert policy.offer(_request(2, tier="interactive"), 0.0) == "hold"
        expired = policy.expire(0.0)
        assert [(r.request_id, reason) for r, reason in expired] == [(1, "overload")]
        assert policy.held_count == 1

    def test_expire_sheds_past_deadline_holds(self):
        slo = SloSpec(ttft_target_s=0.5, deadline_factor=1.0)
        policy = SloAdmission(slo, budget=1, hold_capacity=8)
        policy.offer(_request(0), 0.0)
        policy.offer(_request(1, tier="interactive", arrival=0.0), 0.0)
        # interactive deadline = 0.5 s; just before it, nothing expires.
        assert policy.expire(0.5) == []
        expired = policy.expire(0.51)
        assert [(r.request_id, reason) for r, reason in expired] == [(0 + 1, "deadline")]
        assert policy.held_count == 0

    def test_on_done_frees_budget_for_release(self):
        policy = self._policy(budget=1)
        policy.offer(_request(0), 0.0)
        policy.offer(_request(1), 0.0)
        assert policy.release(0.0) == []
        policy.on_done(_request(0))
        assert [r.request_id for r in policy.release(0.0)] == [1]

    def test_rejects_degenerate_limits(self):
        with pytest.raises(ValueError):
            SloAdmission(SloSpec(), budget=0)
        with pytest.raises(ValueError):
            SloAdmission(SloSpec(), budget=1, hold_capacity=0)


class TestFactory:
    def test_resolves_policies_by_name(self):
        assert make_admission("fifo", SloSpec(), 4).name == "fifo"
        assert make_admission("slo", SloSpec(), 4).name == "slo"

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_admission("lottery", SloSpec(), 4)
