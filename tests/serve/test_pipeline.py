"""Pluggable serving pipelines: capability table and adapters."""

import pytest

from repro.core import ClusterConfig
from repro.serve import (
    ClusterPipeline,
    DisaggPipeline,
    FlexGenPipeline,
    LoadSpec,
    PeftPipeline,
    ServingPipeline,
    StreamChunk,
    VllmPipeline,
    make_pipeline,
)

RESERVE = 55 << 30

_TINY = LoadSpec(rate=4.0, duration=2.0)


def _cluster_pipeline():
    return ClusterPipeline(
        ClusterConfig(
            replicas=2, system="pipellm", policy="least-loaded",
            reserve_bytes=RESERVE, max_outstanding=12,
        )
    )


class TestCapabilities:
    def test_only_the_cluster_streams(self):
        assert ClusterPipeline.capabilities["streaming"]
        assert not VllmPipeline.capabilities["streaming"]
        assert not FlexGenPipeline.capabilities["streaming"]
        assert not PeftPipeline.capabilities["streaming"]

    def test_ids_are_distinct(self):
        ids = {
            cls.id
            for cls in (ClusterPipeline, DisaggPipeline, VllmPipeline,
                        FlexGenPipeline, PeftPipeline)
        }
        assert len(ids) == 5

    def test_disagg_advertises_migration_failover(self):
        assert DisaggPipeline.capabilities["migration"]
        assert DisaggPipeline.capabilities["failover"]
        assert not DisaggPipeline.capabilities["streaming"]

    def test_non_streaming_pipeline_refuses_to_stream(self):
        with pytest.raises(NotImplementedError):
            next(VllmPipeline().stream(_TINY))


class TestClusterPipeline:
    def test_serve_returns_ledger_closing_metrics(self):
        pipeline = _cluster_pipeline()
        doc = pipeline.serve(_TINY)
        assert doc["offered"] > 0
        assert doc["completed"] + doc["shed"] == doc["offered"]
        assert pipeline.last_result is not None

    def test_stream_yields_ordered_chunks_per_request(self):
        pipeline = _cluster_pipeline()
        chunks = list(pipeline.stream(_TINY))
        assert chunks
        assert all(isinstance(c, StreamChunk) for c in chunks)
        by_request = {}
        for chunk in chunks:
            by_request.setdefault(chunk.request_id, []).append(chunk)
        for seq in by_request.values():
            assert [c.index for c in seq] == list(range(1, len(seq) + 1))


class TestOfflineAdapters:
    def test_vllm_adapter_maps_load_onto_engine(self):
        doc = VllmPipeline().serve(LoadSpec(rate=2.0, duration=2.0))
        assert doc["pipeline"] == "vllm"
        assert doc["finished"] >= 0
        assert doc["mean_normalized_latency_s"] >= 0.0

    def test_flexgen_adapter_scales_requests_with_load(self):
        doc = FlexGenPipeline(batch_size=4).serve(LoadSpec(rate=4.0, duration=2.0))
        assert doc["pipeline"] == "flexgen"
        assert doc["completed"] == 8  # rate x duration beats the batch floor
        assert doc["throughput_tps"] > 0.0

    def test_peft_adapter_derives_steps_from_load(self):
        doc = PeftPipeline().serve(LoadSpec(rate=32.0, duration=2.0))
        assert doc["pipeline"] == "peft"
        assert doc["steps"] == 2
        assert doc["step_time_s"] > 0.0

    def test_disagg_adapter_surfaces_the_migration_plane(self):
        doc = DisaggPipeline().serve(LoadSpec(rate=4.0, duration=1.5))
        assert doc["pipeline"] == "disagg"
        assert doc["completed"] > 0
        assert doc["migration_chunks"] > 0
        assert doc["migration_hit_rate"] > 0.0
        assert doc["migration_s_per_chunk"] > 0.0


class TestFactory:
    def test_resolves_by_id(self):
        for name in ("cluster", "disagg", "vllm", "flexgen", "peft"):
            pipeline = make_pipeline(name)
            assert isinstance(pipeline, ServingPipeline)
            assert pipeline.id == name

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_pipeline("triton")
