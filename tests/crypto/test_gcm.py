"""AES-GCM tests: NIST vectors, tamper detection, properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import AesGcm, AuthenticationError, iv_from_counter

# NIST GCM test case 3/4 material (AES-128).
_KEY = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
_IV = bytes.fromhex("cafebabefacedbaddecaf888")
_PT = bytes.fromhex(
    "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
    "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39"
)
_AAD = bytes.fromhex("feedfacedeadbeeffeedfacedeadbeefabaddad2")
_CT = bytes.fromhex(
    "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
    "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091"
)
_TAG = bytes.fromhex("5bc94fbc3221a5db94fae95ae7121a47")


class TestKnownAnswers:
    def test_encrypt_with_aad(self):
        ciphertext, tag = AesGcm(_KEY).encrypt(_IV, _PT, aad=_AAD)
        assert ciphertext == _CT
        assert tag == _TAG

    def test_decrypt_with_aad(self):
        assert AesGcm(_KEY).decrypt(_IV, _CT, _TAG, aad=_AAD) == _PT

    def test_empty_plaintext_vector(self):
        # NIST test case 1: empty plaintext, empty AAD, zero key/IV.
        gcm = AesGcm(bytes(16))
        ciphertext, tag = gcm.encrypt(bytes(12), b"")
        assert ciphertext == b""
        assert tag == bytes.fromhex("58e2fccefa7e3061367f1d57a4e7455a")

    def test_single_block_vector(self):
        # NIST test case 2.
        gcm = AesGcm(bytes(16))
        ciphertext, tag = gcm.encrypt(bytes(12), bytes(16))
        assert ciphertext == bytes.fromhex("0388dace60b6a392f328c2b971b2fe78")
        assert tag == bytes.fromhex("ab6e47d42cec13bdf53a67b21257bddf")


class TestAuthentication:
    def test_tampered_ciphertext_rejected(self):
        gcm = AesGcm(_KEY)
        bad = bytes([_CT[0] ^ 1]) + _CT[1:]
        with pytest.raises(AuthenticationError):
            gcm.decrypt(_IV, bad, _TAG, aad=_AAD)

    def test_tampered_tag_rejected(self):
        gcm = AesGcm(_KEY)
        bad = bytes([_TAG[0] ^ 1]) + _TAG[1:]
        with pytest.raises(AuthenticationError):
            gcm.decrypt(_IV, _CT, bad, aad=_AAD)

    def test_wrong_iv_rejected(self):
        gcm = AesGcm(_KEY)
        with pytest.raises(AuthenticationError):
            gcm.decrypt(iv_from_counter(99), _CT, _TAG, aad=_AAD)

    def test_wrong_aad_rejected(self):
        gcm = AesGcm(_KEY)
        with pytest.raises(AuthenticationError):
            gcm.decrypt(_IV, _CT, _TAG, aad=b"different")

    def test_try_decrypt_returns_none(self):
        gcm = AesGcm(_KEY)
        assert gcm.try_decrypt(iv_from_counter(99), _CT, _TAG, aad=_AAD) is None
        assert gcm.try_decrypt(_IV, _CT, _TAG, aad=_AAD) == _PT

    def test_truncated_tag_rejected(self):
        gcm = AesGcm(_KEY)
        with pytest.raises(AuthenticationError):
            gcm.decrypt(_IV, _CT, _TAG[:8], aad=_AAD)


class TestIvEncoding:
    def test_counter_roundtrip(self):
        nonce = iv_from_counter(12345)
        assert len(nonce) == 12
        assert int.from_bytes(nonce, "big") == 12345

    def test_counter_bounds(self):
        with pytest.raises(ValueError):
            iv_from_counter(-1)
        with pytest.raises(ValueError):
            iv_from_counter(1 << 96)
        assert iv_from_counter((1 << 96) - 1)

    def test_distinct_counters_distinct_nonces(self):
        assert iv_from_counter(1) != iv_from_counter(2)

    def test_non_96bit_nonce_rejected(self):
        gcm = AesGcm(bytes(16))
        with pytest.raises(ValueError):
            gcm.encrypt(bytes(8), b"x")


class TestProperties:
    @given(
        key=st.binary(min_size=16, max_size=16),
        counter=st.integers(min_value=0, max_value=2**40),
        plaintext=st.binary(min_size=0, max_size=200),
        aad=st.binary(min_size=0, max_size=40),
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip(self, key, counter, plaintext, aad):
        gcm = AesGcm(key)
        nonce = iv_from_counter(counter)
        ciphertext, tag = gcm.encrypt(nonce, plaintext, aad)
        assert gcm.decrypt(nonce, ciphertext, tag, aad) == plaintext

    @given(
        key=st.binary(min_size=16, max_size=16),
        counter=st.integers(min_value=0, max_value=2**40),
        plaintext=st.binary(min_size=1, max_size=100),
    )
    @settings(max_examples=20, deadline=None)
    def test_ciphertext_differs_from_plaintext_length_preserved(self, key, counter, plaintext):
        gcm = AesGcm(key)
        ciphertext, _ = gcm.encrypt(iv_from_counter(counter), plaintext)
        assert len(ciphertext) == len(plaintext)

    @given(
        key=st.binary(min_size=16, max_size=16),
        # 16+ bytes: one-byte ciphertexts from distinct IVs legitimately
        # collide with probability 1/256 (CTR keystream bytes coincide),
        # which hypothesis will eventually find. At 16 bytes the
        # collision probability is 2^-128 — the property holds.
        plaintext=st.binary(min_size=16, max_size=64),
        c1=st.integers(min_value=0, max_value=2**30),
        c2=st.integers(min_value=0, max_value=2**30),
    )
    @settings(max_examples=20, deadline=None)
    def test_distinct_ivs_distinct_ciphertexts(self, key, plaintext, c1, c2):
        if c1 == c2:
            c2 += 1
        gcm = AesGcm(key)
        ct1, _ = gcm.encrypt(iv_from_counter(c1), plaintext)
        ct2, _ = gcm.encrypt(iv_from_counter(c2), plaintext)
        assert ct1 != ct2
