"""Secure-session tests: the IV-synchronization contract of §2.2.

These tests pin the exact behaviour PipeLLM's design revolves around:
in-order delivery authenticates; any reordering, skip, or replay is a
GCM failure.
"""

import pytest

from repro.crypto import AuthenticationError, SecureSession


@pytest.fixture
def endpoints():
    return SecureSession(key=bytes(range(16))).endpoints()


class TestHappyPath:
    def test_h2d_roundtrip(self, endpoints):
        cpu, gpu = endpoints
        message = cpu.encrypt_next(b"layer-weights")
        assert gpu.decrypt_next(message) == b"layer-weights"

    def test_d2h_roundtrip(self, endpoints):
        cpu, gpu = endpoints
        message = gpu.encrypt_next(b"kv-cache")
        assert cpu.decrypt_next(message) == b"kv-cache"

    def test_many_in_order(self, endpoints):
        cpu, gpu = endpoints
        for i in range(50):
            payload = f"chunk-{i}".encode()
            assert gpu.decrypt_next(cpu.encrypt_next(payload)) == payload

    def test_directions_independent(self, endpoints):
        cpu, gpu = endpoints
        up = cpu.encrypt_next(b"up")
        down = gpu.encrypt_next(b"down")
        # Interleaved directions use separate counters.
        assert cpu.decrypt_next(down) == b"down"
        assert gpu.decrypt_next(up) == b"up"

    def test_logical_size_is_carried(self, endpoints):
        cpu, _ = endpoints
        message = cpu.encrypt_next(b"tiny", nbytes_logical=1 << 30)
        assert message.nbytes_logical == 1 << 30


class TestDesynchronization:
    def test_out_of_order_delivery_fails(self, endpoints):
        cpu, gpu = endpoints
        first = cpu.encrypt_next(b"first")
        second = cpu.encrypt_next(b"second")
        with pytest.raises(AuthenticationError):
            gpu.decrypt_next(second)
        # The failed attempt consumed the receiver IV: even the right
        # message can no longer authenticate — the channel is wedged.
        with pytest.raises(AuthenticationError):
            gpu.decrypt_next(first)

    def test_replay_fails(self, endpoints):
        cpu, gpu = endpoints
        message = cpu.encrypt_next(b"secret")
        assert gpu.decrypt_next(message) == b"secret"
        with pytest.raises(AuthenticationError):
            gpu.decrypt_next(message)

    def test_cross_session_fails(self):
        cpu_a, _ = SecureSession(key=bytes(16)).endpoints()
        _, gpu_b = SecureSession(key=bytes(range(16))).endpoints()
        message = cpu_a.encrypt_next(b"x")
        with pytest.raises(AuthenticationError):
            gpu_b.decrypt_next(message)


class TestSpeculativeEncryption:
    def test_encrypt_with_iv_does_not_consume(self, endpoints):
        cpu, _ = endpoints
        before = cpu.tx_iv.current
        cpu.encrypt_with_iv(b"speculative", counter=before + 5)
        assert cpu.tx_iv.current == before

    def test_correctly_predicted_iv_authenticates(self, endpoints):
        cpu, gpu = endpoints
        predicted = cpu.tx_iv.peek()
        message = cpu.encrypt_with_iv(b"predicted", predicted)
        cpu.commit_tx_iv()
        assert gpu.decrypt_next(message) == b"predicted"

    def test_mispredicted_iv_fails(self, endpoints):
        cpu, gpu = endpoints
        message = cpu.encrypt_with_iv(b"too-early", cpu.tx_iv.peek(ahead=3))
        cpu.commit_tx_iv()
        with pytest.raises(AuthenticationError):
            gpu.decrypt_next(message)

    def test_nop_padding_heals_future_iv(self, endpoints):
        """The §5.3 mechanism end to end: pad NOPs until the staged
        ciphertext's predicted IV becomes current, then deliver it."""
        cpu, gpu = endpoints
        target_iv = cpu.tx_iv.peek(ahead=3)
        staged = cpu.encrypt_with_iv(b"staged", target_iv)
        while cpu.tx_iv.current < target_iv:
            nop = cpu.encrypt_next(b"\x00")
            gpu.decrypt_next(nop)
        cpu.commit_tx_iv()
        assert gpu.decrypt_next(staged) == b"staged"


class TestSessionFactory:
    def test_custom_start_ivs(self):
        session = SecureSession(key=bytes(16), h2d_start_iv=100, d2h_start_iv=200)
        cpu, gpu = session.endpoints()
        assert cpu.tx_iv.current == 100
        assert gpu.rx_iv.current == 100
        assert gpu.tx_iv.current == 200
        assert cpu.rx_iv.current == 200

    def test_bad_key_rejected(self):
        with pytest.raises(ValueError):
            SecureSession(key=b"short")
