"""IvStream monotonicity and bookkeeping tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import IvExhaustedError, IvStream


class TestBasics:
    def test_initial_state(self):
        stream = IvStream(start=5, name="tx")
        assert stream.current == 5
        assert stream.consumed == 0

    def test_consume_advances(self):
        stream = IvStream(start=1)
        assert stream.consume() == 1
        assert stream.consume() == 2
        assert stream.current == 3
        assert stream.consumed == 2

    def test_peek_does_not_advance(self):
        stream = IvStream(start=10)
        assert stream.peek() == 10
        assert stream.peek(ahead=3) == 13
        assert stream.current == 10

    def test_peek_negative_rejected(self):
        with pytest.raises(ValueError):
            IvStream().peek(ahead=-1)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            IvStream(start=-1)


class TestAdvance:
    def test_advance_forward(self):
        stream = IvStream(start=1)
        skipped = stream.advance_to(10)
        assert skipped == 9
        assert stream.current == 10

    def test_advance_backwards_forbidden(self):
        stream = IvStream(start=5)
        with pytest.raises(ValueError):
            stream.advance_to(4)

    def test_advance_to_same_is_noop(self):
        stream = IvStream(start=5)
        assert stream.advance_to(5) == 0


class TestExhaustion:
    def test_exhaustion_raises(self):
        stream = IvStream(start=IvStream.MAX)
        with pytest.raises(IvExhaustedError):
            stream.consume()

    def test_nonce_encoding(self):
        stream = IvStream(start=7)
        assert int.from_bytes(stream.nonce(7), "big") == 7


class TestProperties:
    @given(start=st.integers(min_value=0, max_value=2**40),
           n=st.integers(min_value=1, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_consumed_values_unique_and_monotone(self, start, n):
        stream = IvStream(start=start)
        values = [stream.consume() for _ in range(n)]
        assert values == sorted(set(values))
        assert values[0] == start
        assert values[-1] == start + n - 1
