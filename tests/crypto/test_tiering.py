"""Payload-size tiering invariants (repro.crypto.tiering).

Tiering substitutes a fixed-size authenticated digest for bulk
functional plaintexts. These tests pin the contract:

* round-trip fidelity — the receiver always gets the original bytes;
* auth fidelity — every corruption GCM would catch is still caught,
  whether it lands on the tag, the ciphertext, or the carried bytes;
* accounting fidelity — exactly one IV per message per direction and
  unchanged ``nbytes_logical``, whatever the payload size;
* transparency — payloads at or below the threshold produce
  bit-identical wire bytes to an untiered session.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import fastpath
from repro.crypto import AuthenticationError, SecureSession
from repro.crypto.tiering import DIGEST_BYTES, expand, payload_digest, shrink

THRESHOLD = 64

small = st.binary(min_size=0, max_size=THRESHOLD)
bulk = st.binary(min_size=THRESHOLD + 1, max_size=4 * THRESHOLD).filter(
    lambda b: len(b) > THRESHOLD
)
anysize = st.one_of(small, bulk)


@pytest.fixture(autouse=True)
def _tiered_profile():
    with fastpath.use_profile("fast", tier_threshold=THRESHOLD):
        yield


def endpoints():
    return SecureSession(key=bytes(range(16))).endpoints()


class TestShrinkExpand:
    def test_small_payload_passes_through(self):
        assert shrink(b"x" * THRESHOLD) == (b"x" * THRESHOLD, None)

    def test_bulk_payload_becomes_fixed_size_digest(self):
        payload = bytes(range(256))
        functional, carried = shrink(payload)
        assert carried == payload
        assert functional == payload_digest(payload)
        assert len(functional) == DIGEST_BYTES

    def test_digest_binds_length_and_content(self):
        assert payload_digest(b"a" * 100) != payload_digest(b"a" * 101)
        assert payload_digest(b"a" * 100) != payload_digest(b"b" * 100)

    def test_expand_rejects_mismatched_carry(self):
        functional, carried = shrink(bytes(200))
        with pytest.raises(AuthenticationError):
            expand(functional, carried + b"\x00")
        with pytest.raises(AuthenticationError):
            expand(functional, carried[:-1])

    def test_threshold_zero_disables_tiering(self):
        with fastpath.use_profile("fast", tier_threshold=0):
            assert shrink(bytes(1 << 16))[1] is None


class TestSessionRoundTrip:
    @given(payload=anysize)
    @settings(max_examples=50, deadline=None)
    def test_round_trip_any_size(self, payload):
        cpu, gpu = endpoints()
        assert gpu.decrypt_next(cpu.encrypt_next(payload)) == payload

    @given(payload=bulk)
    @settings(max_examples=30, deadline=None)
    def test_bulk_ciphertext_is_fixed_size(self, payload):
        cpu, _ = endpoints()
        message = cpu.encrypt_next(payload, nbytes_logical=1 << 20)
        assert len(message.ciphertext) == DIGEST_BYTES
        assert message.carried == payload
        # Timing inputs are untouched by tiering.
        assert message.nbytes_logical == 1 << 20

    @given(payload=bulk, byte_index=st.integers(0, 15))
    @settings(max_examples=30, deadline=None)
    def test_tampered_tag_still_fails_auth(self, payload, byte_index):
        cpu, gpu = endpoints()
        message = cpu.encrypt_next(payload)
        bad = bytearray(message.tag)
        bad[byte_index] ^= 0x01
        tampered = type(message)(
            message.ciphertext, bytes(bad), message.sender_iv,
            message.nbytes_logical, message.carried,
        )
        with pytest.raises(AuthenticationError):
            gpu.decrypt_next(tampered)

    @given(payload=bulk, data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_tampered_carried_bytes_fail_auth(self, payload, data):
        # The bulk bytes ride outside the cipher; flipping any of them
        # must still surface as an AuthenticationError at the receiver.
        cpu, gpu = endpoints()
        message = cpu.encrypt_next(payload)
        index = data.draw(st.integers(0, len(payload) - 1))
        bad = bytearray(message.carried)
        bad[index] ^= 0x01
        tampered = type(message)(
            message.ciphertext, message.tag, message.sender_iv,
            message.nbytes_logical, bytes(bad),
        )
        with pytest.raises(AuthenticationError):
            gpu.decrypt_next(tampered)

    @given(payloads=st.lists(anysize, min_size=1, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_one_iv_per_message_regardless_of_size(self, payloads):
        cpu, gpu = endpoints()
        first_tx = cpu.tx_iv.peek()
        for payload in payloads:
            gpu.decrypt_next(cpu.encrypt_next(payload))
        assert cpu.tx_iv.peek() == first_tx + len(payloads)
        assert gpu.rx_iv.peek() == first_tx + len(payloads)

    @given(payload=small)
    @settings(max_examples=30, deadline=None)
    def test_below_threshold_wire_bytes_identical_to_untiered(self, payload):
        cpu, _ = endpoints()
        tiered = cpu.encrypt_next(payload)
        with fastpath.use_profile("reference"):
            ref_cpu, _ = endpoints()
            untiered = ref_cpu.encrypt_next(payload)
        assert tiered.ciphertext == untiered.ciphertext
        assert tiered.tag == untiered.tag
        assert tiered.carried is None

    @given(payload=bulk)
    @settings(max_examples=20, deadline=None)
    def test_desynchronized_counters_still_fail(self, payload):
        cpu, gpu = endpoints()
        cpu.commit_tx_iv()  # cpu burns an IV the gpu never sees
        message = cpu.encrypt_next(payload)
        with pytest.raises(AuthenticationError):
            gpu.decrypt_next(message)
