"""AES-GCM conformance against the NIST CAVP known-answer vectors.

The McGrew-Viega GCM spec test cases (the set NIST's CAVP validation
reuses) across all three AES key sizes, each exercised three ways:

* **encrypt** — ciphertext and tag must match the vector bit-exactly;
* **decrypt** — the vector's ciphertext+tag must authenticate and
  round-trip to the plaintext;
* **tag-reject** — any single flipped tag bit must raise
  :class:`AuthenticationError` (and so must a flipped ciphertext or
  AAD bit on the vectors that have payloads).

Only 96-bit IVs appear here: that is the only IV length the PipeLLM
channel ever derives (``iv_from_counter``), and the only one the GCM
fast path (J0 = IV || 0^31 || 1) covers.
"""

import pytest

from repro.crypto import AesGcm, AuthenticationError, TAG_SIZE

_KEY128 = "feffe9928665731c6d6a8f9467308308"
_IV96 = "cafebabefacedbaddecaf888"
_PT64 = (
    "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
    "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255"
)
_PT60 = _PT64[:120]
_AAD20 = "feedfacedeadbeeffeedfacedeadbeefabaddad2"

#: (name, key, iv, plaintext, aad, ciphertext, tag) — all hex.
VECTORS = [
    # AES-128 (test cases 1-4)
    ("aes128-tc1", "00" * 16, "00" * 12, "", "", "",
     "58e2fccefa7e3061367f1d57a4e7455a"),
    ("aes128-tc2", "00" * 16, "00" * 12, "00" * 16, "",
     "0388dace60b6a392f328c2b971b2fe78",
     "ab6e47d42cec13bdf53a67b21257bddf"),
    ("aes128-tc3", _KEY128, _IV96, _PT64, "",
     "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
     "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985",
     "4d5c2af327cd64a62cf35abd2ba6fab4"),
    ("aes128-tc4", _KEY128, _IV96, _PT60, _AAD20,
     "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
     "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091",
     "5bc94fbc3221a5db94fae95ae7121a47"),
    # AES-192 (test cases 7-9)
    ("aes192-tc7", "00" * 24, "00" * 12, "", "", "",
     "cd33b28ac773f74ba00ed1f312572435"),
    ("aes192-tc8", "00" * 24, "00" * 12, "00" * 16, "",
     "98e7247c07f0fe411c267e4384b0f600",
     "2ff58d80033927ab8ef4d4587514f0fb"),
    ("aes192-tc9", _KEY128 + "feffe9928665731c", _IV96, _PT64, "",
     "3980ca0b3c00e841eb06fac4872a2757859e1ceaa6efd984628593b40ca1e19c"
     "7d773d00c144c525ac619d18c84a3f4718e2448b2fe324d9ccda2710acade256",
     "9924a7c8587336bfb118024db8674a14"),
    # AES-256 (test cases 13-15)
    ("aes256-tc13", "00" * 32, "00" * 12, "", "", "",
     "530f8afbc74536b9a963b4f1c4cb738b"),
    ("aes256-tc14", "00" * 32, "00" * 12, "00" * 16, "",
     "cea7403d4d606b6e074ec5d3baf39d18",
     "d0d1c8a799996bf0265b98b5d48ab919"),
    ("aes256-tc15", _KEY128 * 2, _IV96, _PT64, "",
     "522dc1f099567d07f47f37a32a84427d643a8cdcbfe5c0c97598a2bd2555d1aa"
     "8cb08e48590dbb3da7b08b1056828838c5f61e6393ba7a0abcc9f662898015ad",
     "b094dac5d93471bdec1a502270e3cc6c"),
]

_IDS = [v[0] for v in VECTORS]


def _unpack(vector):
    name, key, iv, pt, aad, ct, tag = vector
    return (bytes.fromhex(key), bytes.fromhex(iv), bytes.fromhex(pt),
            bytes.fromhex(aad), bytes.fromhex(ct), bytes.fromhex(tag))


@pytest.mark.parametrize("vector", VECTORS, ids=_IDS)
def test_encrypt_matches_vector(vector):
    key, iv, pt, aad, ct, tag = _unpack(vector)
    got_ct, got_tag = AesGcm(key).encrypt(iv, pt, aad=aad)
    assert got_ct == ct
    assert got_tag == tag
    assert len(got_tag) == TAG_SIZE


@pytest.mark.parametrize("vector", VECTORS, ids=_IDS)
def test_decrypt_matches_vector(vector):
    key, iv, pt, aad, ct, tag = _unpack(vector)
    assert AesGcm(key).decrypt(iv, ct, tag, aad=aad) == pt


@pytest.mark.parametrize("vector", VECTORS, ids=_IDS)
def test_every_flipped_tag_bit_rejected(vector):
    key, iv, pt, aad, ct, tag = _unpack(vector)
    gcm = AesGcm(key)
    for byte_index in range(len(tag)):
        for bit in (0x01, 0x80):
            bad = bytearray(tag)
            bad[byte_index] ^= bit
            with pytest.raises(AuthenticationError):
                gcm.decrypt(iv, ct, bytes(bad), aad=aad)


@pytest.mark.parametrize(
    "vector", [v for v in VECTORS if v[3]], ids=[v[0] for v in VECTORS if v[3]]
)
def test_flipped_ciphertext_bit_rejected(vector):
    key, iv, pt, aad, ct, tag = _unpack(vector)
    bad = bytearray(ct)
    bad[0] ^= 0x01
    with pytest.raises(AuthenticationError):
        AesGcm(key).decrypt(iv, bytes(bad), tag, aad=aad)


@pytest.mark.parametrize(
    "vector", [v for v in VECTORS if v[4]], ids=[v[0] for v in VECTORS if v[4]]
)
def test_flipped_aad_bit_rejected(vector):
    key, iv, pt, aad, ct, tag = _unpack(vector)
    bad = bytearray(aad)
    bad[-1] ^= 0x01
    with pytest.raises(AuthenticationError):
        AesGcm(key).decrypt(iv, ct, tag, aad=bytes(bad))
