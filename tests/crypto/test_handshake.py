"""Session-establishment tests: key exchange, derivation, MITM."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import (
    AuthenticationError,
    DhKeyPair,
    HandshakeMessage,
    SessionHandshake,
    hkdf,
)


class TestHkdf:
    def test_deterministic(self):
        a = hkdf(b"secret", b"salt", b"info", 32)
        b = hkdf(b"secret", b"salt", b"info", 32)
        assert a == b
        assert len(a) == 32

    def test_inputs_matter(self):
        base = hkdf(b"secret", b"salt", b"info", 16)
        assert hkdf(b"other", b"salt", b"info", 16) != base
        assert hkdf(b"secret", b"other", b"info", 16) != base
        assert hkdf(b"secret", b"salt", b"other", 16) != base

    def test_expansion_lengths(self):
        long = hkdf(b"s", b"", b"i", 100)
        assert len(long) == 100
        # Prefix property of expand.
        assert hkdf(b"s", b"", b"i", 32) == long[:32]

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            hkdf(b"s", b"", b"i", 0)


class TestDhKeyPair:
    def test_shared_secret_agreement(self):
        alice = DhKeyPair.generate(b"alice")
        bob = DhKeyPair.generate(b"bob")
        assert alice.shared_secret(bob.public) == bob.shared_secret(alice.public)

    def test_different_seeds_different_keys(self):
        assert DhKeyPair.generate(b"a").public != DhKeyPair.generate(b"b").public

    def test_degenerate_peer_rejected(self):
        keypair = DhKeyPair.generate(b"x")
        with pytest.raises(ValueError):
            keypair.shared_secret(0)
        with pytest.raises(ValueError):
            keypair.shared_secret(1)


class TestHandshake:
    def make(self):
        return SessionHandshake("driver", b"host"), SessionHandshake("gpu", b"device")

    def test_both_sides_derive_the_same_session(self):
        driver, gpu = self.make()
        a = driver.derive(gpu.message())
        b = gpu.derive(driver.message())
        assert a == b

    def test_derived_sessions_interoperate(self):
        driver, gpu = self.make()
        cpu_end, _ = driver.complete(gpu.message()).endpoints()
        _, gpu_end = gpu.complete(driver.message()).endpoints()
        message = cpu_end.encrypt_next(b"first transfer")
        assert gpu_end.decrypt_next(message) == b"first transfer"

    def test_start_ivs_are_nontrivial(self):
        driver, gpu = self.make()
        session = driver.complete(gpu.message())
        assert session.h2d_start_iv > 1
        assert session.d2h_start_iv > 1
        assert session.h2d_start_iv != session.d2h_start_iv

    def test_mitm_key_substitution_breaks_the_channel(self):
        driver, gpu = self.make()
        mallory = SessionHandshake("gpu", b"mallory")
        # The driver talks to Mallory's key; the GPU to the real one.
        cpu_end, _ = driver.complete(mallory.message()).endpoints()
        _, gpu_end = gpu.complete(driver.message()).endpoints()
        message = cpu_end.encrypt_next(b"weights")
        with pytest.raises(AuthenticationError):
            gpu_end.decrypt_next(message)

    def test_role_validation(self):
        with pytest.raises(ValueError):
            SessionHandshake("hypervisor", b"x")
        driver, _ = self.make()
        with pytest.raises(ValueError):
            driver.derive(driver.message())  # driver-driver

    def test_transcript_covers_both_nonces(self):
        driver, gpu = self.make()
        original = driver.transcript(gpu.message())
        altered = HandshakeMessage("gpu", gpu.message().public_key, b"\x00" * 16)
        assert driver.transcript(altered) != original

    @given(seed_a=st.binary(min_size=1, max_size=16), seed_b=st.binary(min_size=1, max_size=16))
    @settings(max_examples=10, deadline=None)
    def test_any_seed_pair_agrees(self, seed_a, seed_b):
        driver = SessionHandshake("driver", seed_a)
        gpu = SessionHandshake("gpu", seed_b)
        assert driver.derive(gpu.message()) == gpu.derive(driver.message())
