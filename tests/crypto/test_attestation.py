"""GPU-attestation tests: genuine devices verify, everything else fails."""

import pytest

from repro.cc import build_attested_machine
from repro.crypto import (
    GOLDEN_MEASUREMENTS,
    AttestationError,
    AttestationReport,
    GpuDevice,
    RootOfTrust,
    SessionHandshake,
)


@pytest.fixture
def root():
    return RootOfTrust()


@pytest.fixture
def transcript():
    driver = SessionHandshake("driver", b"host")
    gpu = SessionHandshake("gpu", b"device")
    return driver.transcript(gpu.message())


class TestProvisioning:
    def test_provision_once(self, root):
        root.provision("gpu-0")
        with pytest.raises(ValueError):
            root.provision("gpu-0")

    def test_secrets_differ_per_device(self, root):
        assert root.provision("gpu-0") != root.provision("gpu-1")


class TestVerification:
    def test_genuine_report_verifies(self, root, transcript):
        device = GpuDevice("gpu-0", root.provision("gpu-0"))
        report = device.attest(transcript)
        root.verify(report, expected_measurements=GOLDEN_MEASUREMENTS)

    def test_unprovisioned_device_rejected(self, root, transcript):
        rogue = GpuDevice("gpu-x", b"made-up-secret")
        with pytest.raises(AttestationError, match="unknown device"):
            root.verify(rogue.attest(transcript))

    def test_tampered_firmware_rejected(self, root, transcript):
        device = GpuDevice("gpu-0", root.provision("gpu-0"))
        evil = device.with_tampered_firmware()
        with pytest.raises(AttestationError, match="golden"):
            root.verify(evil.attest(transcript), expected_measurements=GOLDEN_MEASUREMENTS)

    def test_wrong_secret_rejected(self, root, transcript):
        root.provision("gpu-0")
        impostor = GpuDevice("gpu-0", b"wrong-secret-material")
        with pytest.raises(AttestationError, match="MAC"):
            root.verify(impostor.attest(transcript))

    def test_replayed_report_rejected(self, root, transcript):
        """A report for an old handshake fails against a new one: the
        MAC binds the transcript, and the transcript binds the nonces."""
        device = GpuDevice("gpu-0", root.provision("gpu-0"))
        old_report = device.attest(transcript)
        new_transcript = SessionHandshake("driver", b"fresh-host").transcript(
            SessionHandshake("gpu", b"device").message()
        )
        forged = AttestationReport(
            old_report.device_id,
            old_report.measurements,
            new_transcript,        # Attacker rebinds the transcript...
            old_report.mac,        # ...but cannot recompute the MAC.
        )
        with pytest.raises(AttestationError, match="MAC"):
            root.verify(forged)


class TestAttestedBringup:
    def test_full_bringup_yields_working_machine(self):
        machine = build_attested_machine()
        assert machine.cc_enabled
        region = machine.host_memory.allocate(1 << 20, "w", b"weights")

        def app():
            handle_runtime = machine  # silence lint: use machine below
            from repro.cc import CudaContext

            ctx = CudaContext(machine)
            yield ctx.memcpy_h2d(region.chunk()).complete

        machine.sim.process(app())
        machine.run()
        assert machine.gpu.read_plaintext("w") == b"weights"
        assert machine.gpu.auth_failures == 0

    def test_bringup_derives_distinct_sessions_per_seed(self):
        a = build_attested_machine(host_seed=b"seed-a")
        b = build_attested_machine(host_seed=b"seed-b")
        assert a.cpu_endpoint.tx_iv.current != b.cpu_endpoint.tx_iv.current
