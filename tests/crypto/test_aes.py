"""AES known-answer tests (FIPS-197) and fast-path equivalence."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import AES

# FIPS-197 Appendix C known-answer vectors.
_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")
_VECTORS = [
    (
        bytes.fromhex("000102030405060708090a0b0c0d0e0f"),
        bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a"),
    ),
    (
        bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617"),
        bytes.fromhex("dda97ca4864cdfe06eaf70a0ec0d7191"),
    ),
    (
        bytes.fromhex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"),
        bytes.fromhex("8ea2b7ca516745bfeafc49904b496089"),
    ),
]


class TestKnownAnswers:
    @pytest.mark.parametrize("key,expected", _VECTORS, ids=["aes128", "aes192", "aes256"])
    def test_encrypt(self, key, expected):
        assert AES(key).encrypt_block(_PLAINTEXT) == expected

    @pytest.mark.parametrize("key,expected", _VECTORS, ids=["aes128", "aes192", "aes256"])
    def test_decrypt(self, key, expected):
        assert AES(key).decrypt_block(expected) == _PLAINTEXT

    def test_sp800_38a_vector(self):
        # AES-128 ECB vector from SP 800-38A F.1.1.
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        pt = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        ct = bytes.fromhex("3ad77bb40d7a3660a89ecaf32466ef97")
        assert AES(key).encrypt_block(pt) == ct


class TestValidation:
    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            AES(b"short")

    def test_bad_block_length_encrypt(self):
        with pytest.raises(ValueError):
            AES(bytes(16)).encrypt_block(b"tiny")

    def test_bad_block_length_decrypt(self):
        with pytest.raises(ValueError):
            AES(bytes(16)).decrypt_block(b"tiny")


class TestProperties:
    @given(
        key=st.binary(min_size=16, max_size=16),
        block=st.binary(min_size=16, max_size=16),
    )
    @settings(max_examples=30, deadline=None)
    def test_fast_path_matches_reference(self, key, block):
        cipher = AES(key)
        assert cipher.encrypt_block(block) == cipher.encrypt_block_reference(block)

    @given(
        key=st.binary(min_size=32, max_size=32),
        block=st.binary(min_size=16, max_size=16),
    )
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_aes256(self, key, block):
        cipher = AES(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    @given(key=st.binary(min_size=16, max_size=16))
    @settings(max_examples=20, deadline=None)
    def test_permutation_no_fixed_block_collision(self, key):
        cipher = AES(key)
        a = cipher.encrypt_block(bytes(16))
        b = cipher.encrypt_block(bytes(15) + b"\x01")
        assert a != b
