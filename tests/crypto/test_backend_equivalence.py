"""Differential harness: every AES-GCM backend ≡ the reference.

The fast path swaps the pure-Python :class:`AesGcm` for batched or
hardware implementations (:mod:`repro.crypto.backend`). These tests
are the lockdown: each available backend must

* reproduce the full NIST CAVP known-answer set bit-exactly
  (ciphertext, tag, decrypt round-trip);
* agree byte-for-byte with the reference on randomized keys, IVs,
  AADs and payloads — including empty and non-block-aligned ones;
* reject exactly the corrupted inputs the reference rejects.

Backends whose dependency is absent in this environment are skipped
by name, never silently.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import AesGcm, AuthenticationError, TAG_SIZE
from repro.crypto.backend import (
    FAST_ORDER,
    NUMPY_MIN_BLOCKS,
    available_backends,
    backend_available,
    make_gcm,
    resolve_backend,
)
from repro.crypto.gcm import iv_from_counter

from .test_gcm_vectors import VECTORS, _unpack

_IDS = [v[0] for v in VECTORS]

#: Every non-reference backend, skipped (visibly) when unavailable.
BACKENDS = [
    pytest.param(
        name,
        marks=pytest.mark.skipif(
            not backend_available(name),
            reason=f"{name} dependency not installed",
        ),
    )
    for name in FAST_ORDER
    if name != "reference"
]

keys = st.sampled_from([16, 24, 32]).flatmap(
    lambda n: st.binary(min_size=n, max_size=n)
)
nonces = st.binary(min_size=12, max_size=12)
# Straddles the numpy batching cutoff and block alignment: empty,
# sub-block, exact blocks, one-past, and multi-kilobyte payloads.
payloads = st.one_of(
    st.binary(min_size=0, max_size=64),
    st.sampled_from([0, 15, 16, 17, 16 * NUMPY_MIN_BLOCKS - 1,
                     16 * NUMPY_MIN_BLOCKS, 16 * NUMPY_MIN_BLOCKS + 1,
                     4096]).flatmap(
        lambda n: st.binary(min_size=n, max_size=n)
    ),
)
aads = st.binary(min_size=0, max_size=40)


class TestVectorConformance:
    """The CAVP known-answer set, per backend."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("vector", VECTORS, ids=_IDS)
    def test_encrypt_matches_vector(self, backend, vector):
        key, iv, pt, aad, ct, tag = _unpack(vector)
        got_ct, got_tag = make_gcm(key, backend).encrypt(iv, pt, aad=aad)
        assert got_ct == ct
        assert got_tag == tag
        assert len(got_tag) == TAG_SIZE

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("vector", VECTORS, ids=_IDS)
    def test_decrypt_matches_vector(self, backend, vector):
        key, iv, pt, aad, ct, tag = _unpack(vector)
        assert make_gcm(key, backend).decrypt(iv, ct, tag, aad=aad) == pt

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("vector", VECTORS, ids=_IDS)
    def test_every_flipped_tag_bit_rejected(self, backend, vector):
        key, iv, pt, aad, ct, tag = _unpack(vector)
        gcm = make_gcm(key, backend)
        for byte_index in range(len(tag)):
            for bit in (0x01, 0x80):
                bad = bytearray(tag)
                bad[byte_index] ^= bit
                with pytest.raises(AuthenticationError):
                    gcm.decrypt(iv, ct, bytes(bad), aad=aad)
                assert gcm.try_decrypt(iv, ct, bytes(bad), aad=aad) is None


class TestDifferentialProperties:
    """Randomized byte-identity against the reference implementation."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(key=keys, nonce=nonces, plaintext=payloads, aad=aads)
    @settings(max_examples=60, deadline=None)
    def test_encrypt_byte_identical(self, backend, key, nonce, plaintext, aad):
        ref_ct, ref_tag = AesGcm(key).encrypt(nonce, plaintext, aad=aad)
        got_ct, got_tag = make_gcm(key, backend).encrypt(nonce, plaintext, aad=aad)
        assert got_ct == ref_ct
        assert got_tag == ref_tag

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(key=keys, nonce=nonces, plaintext=payloads, aad=aads)
    @settings(max_examples=60, deadline=None)
    def test_decrypt_round_trips_reference_output(
        self, backend, key, nonce, plaintext, aad
    ):
        ct, tag = AesGcm(key).encrypt(nonce, plaintext, aad=aad)
        assert make_gcm(key, backend).decrypt(nonce, ct, tag, aad=aad) == plaintext

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(
        key=keys, nonce=nonces, plaintext=payloads, aad=aads,
        byte_index=st.integers(0, 15), bit=st.integers(0, 7),
    )
    @settings(max_examples=40, deadline=None)
    def test_backends_reject_the_same_corrupted_tags(
        self, backend, key, nonce, plaintext, aad, byte_index, bit
    ):
        ct, tag = AesGcm(key).encrypt(nonce, plaintext, aad=aad)
        bad = bytearray(tag)
        bad[byte_index] ^= 1 << bit
        bad = bytes(bad)
        with pytest.raises(AuthenticationError):
            AesGcm(key).decrypt(nonce, ct, bad, aad=aad)
        with pytest.raises(AuthenticationError):
            make_gcm(key, backend).decrypt(nonce, ct, bad, aad=aad)

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(key=keys, counter=st.integers(1, (1 << 96) - 1), plaintext=payloads)
    @settings(max_examples=30, deadline=None)
    def test_channel_nonces_agree(self, backend, key, counter, plaintext):
        # The nonces the PipeLLM channel actually derives.
        nonce = iv_from_counter(counter)
        assert (
            make_gcm(key, backend).encrypt(nonce, plaintext)
            == AesGcm(key).encrypt(nonce, plaintext)
        )


class TestRegistry:
    def test_reference_always_available(self):
        assert backend_available("reference")
        assert "reference" in available_backends()

    def test_fast_resolves_to_first_available(self):
        assert resolve_backend("fast") == available_backends()[0]

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("enigma")

    def test_make_gcm_memoizes_per_backend_and_key(self):
        key = bytes(16)
        assert make_gcm(key, "reference") is make_gcm(key, "reference")
        assert make_gcm(key, "reference") is not make_gcm(bytes(range(16)), "reference")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bad_key_and_nonce_lengths_rejected(self, backend):
        with pytest.raises(ValueError):
            make_gcm(b"short", backend)
        with pytest.raises(ValueError):
            make_gcm(bytes(16), backend).encrypt(b"8bytes..", b"x")
